//! Simulated network links.
//!
//! The in-memory transport in `infogram-proto` charges every message a
//! delay drawn from a [`LatencyModel`] and may drop it according to a loss
//! probability, so the protocol-count experiments (Figures 2–4) can show
//! how connection and handshake overhead scales with link quality without a
//! real network.

use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::time::Duration;

/// How long a message takes to traverse a link.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Zero-delay, loopback-like link.
    Instant,
    /// Every message takes exactly this long.
    Fixed(Duration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest possible delay.
        min: Duration,
        /// Largest possible delay.
        max: Duration,
    },
    /// Normal with the given mean and stddev, truncated at zero.
    Normal {
        /// Mean delay.
        mean: Duration,
        /// Delay standard deviation.
        std_dev: Duration,
    },
}

impl LatencyModel {
    /// Draw one one-way delay.
    pub fn sample(&self, rng: &mut SplitMix64) -> Duration {
        match self {
            LatencyModel::Instant => Duration::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_secs_f64();
                let hi = max.as_secs_f64().max(lo);
                Duration::from_secs_f64(rng.uniform(lo, hi))
            }
            LatencyModel::Normal { mean, std_dev } => {
                let x = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                Duration::from_secs_f64(x.max(0.0))
            }
        }
    }
}

/// A simulated bidirectional link: latency model, loss probability, and
/// running traffic accounting.
#[derive(Debug)]
pub struct Link {
    latency: LatencyModel,
    loss_probability: f64,
    state: Mutex<LinkState>,
}

#[derive(Debug)]
struct LinkState {
    rng: SplitMix64,
    messages: u64,
    bytes: u64,
    dropped: u64,
}

/// The verdict for one message offered to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the contained delay.
    After(Duration),
    /// The link dropped the message.
    Dropped,
}

impl Link {
    /// A perfect, zero-latency link (the default for tests).
    pub fn ideal() -> Self {
        Link::new(LatencyModel::Instant, 0.0, 0)
    }

    /// A link with the given latency model, loss probability in `[0,1]`,
    /// and RNG seed.
    pub fn new(latency: LatencyModel, loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability out of range"
        );
        Link {
            latency,
            loss_probability,
            state: Mutex::new(LinkState {
                rng: SplitMix64::new(seed),
                messages: 0,
                bytes: 0,
                dropped: 0,
            }),
        }
    }

    /// Offer a message of `bytes` bytes to the link; returns the delivery
    /// verdict and updates the accounting.
    pub fn transmit(&self, bytes: usize) -> Delivery {
        let mut st = self.state.lock();
        let dropped = {
            let p = self.loss_probability;
            p > 0.0 && st.rng.chance(p)
        };
        if dropped {
            st.dropped += 1;
            return Delivery::Dropped;
        }
        let delay = self.latency.sample(&mut st.rng);
        st.messages += 1;
        st.bytes += bytes as u64;
        Delivery::After(delay)
    }

    /// Messages successfully carried.
    pub fn messages(&self) -> u64 {
        self.state.lock().messages
    }

    /// Bytes successfully carried.
    pub fn bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Messages dropped.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_link_delivers_immediately() {
        let link = Link::ideal();
        match link.transmit(100) {
            Delivery::After(d) => assert_eq!(d, Duration::ZERO),
            Delivery::Dropped => panic!("ideal link dropped"),
        }
        assert_eq!(link.messages(), 1);
        assert_eq!(link.bytes(), 100);
        assert_eq!(link.dropped(), 0);
    }

    #[test]
    fn fixed_latency() {
        let link = Link::new(LatencyModel::Fixed(Duration::from_millis(5)), 0.0, 1);
        for _ in 0..10 {
            assert_eq!(link.transmit(1), Delivery::After(Duration::from_millis(5)));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let link = Link::new(
            LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(3),
            },
            0.0,
            2,
        );
        for _ in 0..1000 {
            match link.transmit(1) {
                Delivery::After(d) => {
                    assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(3))
                }
                Delivery::Dropped => panic!("unexpected drop"),
            }
        }
    }

    #[test]
    fn lossy_link_drops_about_right() {
        let link = Link::new(LatencyModel::Instant, 0.3, 3);
        for _ in 0..10_000 {
            let _ = link.transmit(1);
        }
        let rate = link.dropped() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn normal_latency_nonnegative() {
        let link = Link::new(
            LatencyModel::Normal {
                mean: Duration::from_micros(10),
                std_dev: Duration::from_micros(50),
            },
            0.0,
            4,
        );
        for _ in 0..1000 {
            match link.transmit(1) {
                Delivery::After(_) => {}
                Delivery::Dropped => panic!("unexpected drop"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_bad_loss() {
        let _ = Link::new(LatencyModel::Instant, 1.5, 0);
    }
}
