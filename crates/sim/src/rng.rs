//! Deterministic random number generation.
//!
//! Every stochastic model in the reproduction (CPU-load processes, command
//! cost distributions, arrival processes, network jitter) draws from a
//! seedable [`SplitMix64`] so that a fixed seed reproduces an experiment
//! bit-for-bit. We deliberately avoid thread-local global RNGs.

use std::f64::consts::PI;

/// The SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Tiny state, passes BigCrush, and — unlike `rand::thread_rng` — trivially
/// reproducible, which is what a simulation substrate needs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Two generators with the same seed produce the same
    /// stream forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child generator; used to give each simulated
    /// host / client its own stream from one experiment master seed.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo <= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded rejection-free mapping (Lemire); bias is
        // negligible for the n used in simulation (≤ 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential with the given mean (inter-arrival times of a Poisson
    /// process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64(); // avoid ln(0)
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Normal with mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Pareto with scale `x_m` and shape `alpha` (heavy-tailed job service
    /// times).
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        debug_assert!(x_m > 0.0 && alpha > 0.0);
        let u = 1.0 - self.next_f64();
        x_m / u.powf(1.0 / alpha)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform(2.0, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SplitMix64::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SplitMix64::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = SplitMix64::new(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SplitMix64::new(19);
        for _ in 0..10_000 {
            assert!(r.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(23);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SplitMix64::new(31);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(37);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
