//! Scoped scatter-gather fan-out.
//!
//! The InfoGram hot paths — `(info=all)` over many keywords, aggregate
//! queries over many member services, GIIS pulls over many member GRISes
//! — are embarrassingly parallel: each unit of work is independent, the
//! unit count is known up front, and the caller needs every result (in
//! order) before it can reply. [`fan_out`] covers exactly that shape and
//! nothing more:
//!
//! * **scoped** — workers borrow the caller's stack (`std::thread::scope`),
//!   so tasks can capture `&self`, slices, and other non-`'static` data
//!   without `Arc` plumbing;
//! * **work-stealing-free** — workers claim indices from a single shared
//!   atomic cursor. There are no per-worker deques to steal from, no
//!   channels, and no queue allocation: the only coordination is one
//!   `fetch_add` per task;
//! * **order-preserving** — results land in pre-allocated slots indexed by
//!   input position, so the gather side reads them back in input order;
//! * **clock-agnostic** — the pool never touches a clock. Tasks that sleep
//!   on a [`crate::SystemClock`] overlap their waits; tasks that advance a
//!   [`crate::ManualClock`] (the deterministic experiments) accumulate the
//!   same total virtual cost as a sequential loop, so simulated timings
//!   stay reproducible.
//!
//! Degenerate inputs (zero or one item, or a parallelism bound of one)
//! run inline on the calling thread with no spawns at all, which keeps
//! single-keyword queries and cache-hit storms free of thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default cap on worker threads per fan-out (including the caller).
///
/// Fan-out exists to overlap *waiting* (slow providers, member pulls), not
/// to saturate cores, so the cap is deliberately independent of
/// `available_parallelism` — on a single-core host, eight threads sleeping
/// 30 ms each still finish in ~30 ms.
pub const DEFAULT_FAN_OUT: usize = 8;

/// Run `f` over every item, possibly in parallel, returning results in
/// input order. Uses the [`DEFAULT_FAN_OUT`] parallelism bound.
///
/// `f` receives `(index, &item)`. See [`fan_out_bounded`].
///
/// ```
/// use infogram_sim::par::fan_out;
///
/// // Borrowed inputs, order-preserving outputs — no Arc plumbing.
/// let keywords = ["Date", "Memory", "CPULoad"];
/// let lengths = fan_out(&keywords, |i, kw| (i, kw.len()));
/// assert_eq!(lengths, vec![(0, 4), (1, 6), (2, 7)]);
/// ```
pub fn fan_out<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    fan_out_bounded(items, DEFAULT_FAN_OUT, f)
}

/// Run `f` over every item with at most `max_threads` threads (the caller
/// counts as one), returning results in input order.
///
/// Panics in a worker propagate to the caller once all workers have been
/// joined (the scope re-raises the first panic).
pub fn fan_out_bounded<T, R, F>(items: &[T], max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || max_threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // The caller is about to block in the scope join until every worker
    // finishes — unbounded if a task stalls. Holding any lock here would
    // let one slow fan-out wedge every thread that wants that lock.
    crate::lockdep::blocking_point("sim.par.fan_out_join", &[]);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let run = |_worker: usize| {
        loop {
            // Under the model checker, claiming an index is a schedule
            // point, so the explorer can interleave workers between
            // claims. No-op otherwise.
            #[cfg(feature = "model")]
            crate::model::yield_point();
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i, &items[i]);
            // Each index is claimed exactly once, so the slot is empty.
            let _ = slots[i].set(r);
        }
    };
    let helpers = max_threads.min(n) - 1;
    // Pre-assign model thread ids in spawn order so replays are exact.
    #[cfg(feature = "model")]
    let model_tids = crate::model::scope_begin(helpers);
    std::thread::scope(|scope| {
        for w in 0..helpers {
            let run = &run;
            #[cfg(feature = "model")]
            let tid = model_tids.get(w).copied();
            scope.spawn(move || {
                #[cfg(feature = "model")]
                let _worker = crate::model::ScopedWorker::enter(tid);
                run(w + 1)
            });
        }
        run(0);
        // The caller is about to block natively in the scope join;
        // hand the scheduler token on first.
        #[cfg(feature = "model")]
        crate::model::caller_release();
    });
    #[cfg(feature = "model")]
    crate::model::caller_reacquire();
    slots
        .into_iter()
        // lint:allow(unwrap) — the cursor hands out each index exactly once,
        // and the scope join guarantees every claimed index was written
        .map(|slot| slot.into_inner().expect("every index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = fan_out(&items, |i, x| {
            assert_eq!(i as u64, *x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_run_inline() {
        let none: Vec<u32> = vec![];
        assert!(fan_out(&none, |_, x| *x).is_empty());
        let caller = std::thread::current().id();
        let tids = fan_out(&[1u32], |_, _| std::thread::current().id());
        assert_eq!(tids, vec![caller], "single item must not spawn");
    }

    #[test]
    fn bound_of_one_is_sequential() {
        let caller = std::thread::current().id();
        let tids = fan_out_bounded(&[1, 2, 3], 1, |_, _| std::thread::current().id());
        assert!(tids.iter().all(|t| *t == caller));
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        fan_out(&(0..64usize).collect::<Vec<_>>(), |_, i| {
            counters[*i].fetch_add(1, Ordering::SeqCst)
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn sleeps_overlap() {
        // 8 × 30 ms of blocking work should take ~30 ms, not ~240 ms.
        let items = [30u64; 8];
        let start = Instant::now();
        fan_out(&items, |_, ms| {
            std::thread::sleep(Duration::from_millis(*ms))
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "fan-out did not overlap sleeps: {elapsed:?}"
        );
    }

    #[test]
    fn errors_surface_per_slot() {
        let results = fan_out(&[1u32, 2, 3, 4], |_, x| {
            if x % 2 == 0 {
                Err(format!("even {x}"))
            } else {
                Ok(*x)
            }
        });
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Err("even 2".to_string()));
        assert_eq!(results[3], Err("even 4".to_string()));
    }
}
