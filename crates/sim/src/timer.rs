//! Deterministic timer queue.
//!
//! The refresh scheduler (`info::sched`), the GIIS member re-pull loop,
//! and any future subscription machinery all need the same primitive:
//! "run this item at time *t*, earliest first". [`TimerWheel`] is that
//! primitive, kept deliberately passive so it works identically under
//! every execution regime in this repo:
//!
//! * **clock-agnostic** — the wheel never reads a [`crate::Clock`]; the
//!   caller passes `now` into [`TimerWheel::pop_due`]. Under a
//!   [`crate::ManualClock`] a benchmark sweeps simulated hours through
//!   it; under a [`crate::SystemClock`] a polling driver feeds it real
//!   time.
//! * **model-checker-safe** — no threads, no waits, no interior
//!   mutability. Callers wrap it in their own lock, which gives the
//!   schedule explorer a single synchronization point to permute.
//! * **deterministic** — entries due at the same instant pop in
//!   insertion order (a monotonic sequence number breaks ties), so two
//!   runs over the same schedule produce byte-identical orderings.
//!
//! Cancellation is lazy: [`TimerWheel::cancel`] marks the ticket dead
//! and the entry is dropped when it would otherwise surface. This keeps
//! both `schedule` and `cancel` at `O(log n)` / `O(1)` with no heap
//! rebuilds, at the cost of tombstones occupying the heap until due.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::clock::SimTime;

/// Handle to a scheduled entry, used to cancel it before it fires.
///
/// Tickets are unique per wheel for the wheel's lifetime; a ticket from
/// one wheel has no meaning to another.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ticket(u64);

/// An entry surfaced by [`TimerWheel::pop_due`].
#[derive(Debug, PartialEq, Eq)]
pub struct Due<T> {
    /// The instant the entry was scheduled for (≤ the `now` passed to
    /// `pop_due`).
    pub at: SimTime,
    /// The caller's payload.
    pub item: T,
}

#[derive(PartialEq, Eq)]
struct Slot<T> {
    // Ordered by (due time, insertion sequence): earliest first, FIFO
    // among entries due at the same instant.
    key: Reverse<(SimTime, u64)>,
    item: T,
}

impl<T: Eq> Ord for Slot<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T: Eq> PartialOrd for Slot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of `(deadline, payload)` pairs with lazy cancellation.
///
/// ```
/// use infogram_sim::timer::TimerWheel;
/// use infogram_sim::SimTime;
///
/// let mut wheel = TimerWheel::new();
/// wheel.schedule(SimTime::from_secs(5), "later");
/// let early = wheel.schedule(SimTime::from_secs(1), "soon");
///
/// // Nothing is due yet; the wheel reports when to check back.
/// assert_eq!(wheel.pop_due(SimTime::ZERO), None);
/// assert_eq!(wheel.next_deadline(), Some(SimTime::from_secs(1)));
///
/// // A cancelled ticket never fires.
/// assert!(wheel.cancel(early));
/// let due = wheel.pop_due(SimTime::from_secs(10)).expect("due");
/// assert_eq!(due.item, "later");
/// assert!(wheel.is_empty());
/// ```
pub struct TimerWheel<T> {
    heap: BinaryHeap<Slot<(u64, T)>>,
    live: HashSet<u64>,
    next_ticket: u64,
}

impl<T: Eq> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_ticket: 0,
        }
    }

    /// Schedule `item` to surface once the caller's clock reaches `at`.
    ///
    /// Entries sharing the same `at` surface in the order they were
    /// scheduled.
    pub fn schedule(&mut self, at: SimTime, item: T) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.live.insert(ticket);
        self.heap.push(Slot {
            key: Reverse((at, ticket)),
            item: (ticket, item),
        });
        Ticket(ticket)
    }

    /// Cancel a scheduled entry. Returns `false` if the ticket already
    /// fired, was already cancelled, or never belonged to this wheel.
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        // The heap entry stays behind as a tombstone and is discarded
        // when it reaches the top; only the live set is updated here.
        self.live.remove(&ticket.0)
    }

    /// Drop tombstoned (cancelled) entries sitting at the top of the
    /// heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.item.0) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Remove and return the earliest entry due at or before `now`, or
    /// `None` if nothing is due yet.
    ///
    /// Call in a loop to drain everything due at the current instant.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Due<T>> {
        self.skim();
        let due = matches!(self.heap.peek(), Some(top) if top.key.0 .0 <= now);
        if !due {
            return None;
        }
        self.heap.pop().map(|slot| {
            self.live.remove(&slot.item.0);
            Due {
                at: slot.key.0 .0,
                item: slot.item.1,
            }
        })
    }

    /// The deadline of the earliest live entry, or `None` if the wheel
    /// is empty. This is the "sleep until" hint for polling drivers.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|top| top.key.0 .0)
    }

    /// Number of live (non-cancelled) entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Eq + std::fmt::Debug> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("live", &self.len())
            .field("tombstones", &(self.heap.len() - self.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pops_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_secs(3), "c");
        w.schedule(SimTime::from_secs(1), "a");
        w.schedule(SimTime::from_secs(2), "b");
        let mut order = Vec::new();
        while let Some(due) = w.pop_due(SimTime::from_secs(10)) {
            order.push(due.item);
        }
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let t = SimTime::from_secs(1);
        let mut w = TimerWheel::new();
        for i in 0..16u32 {
            w.schedule(t, i);
        }
        let mut order = Vec::new();
        while let Some(due) = w.pop_due(t) {
            order.push(due.item);
        }
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nothing_due_before_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_secs(5), ());
        assert_eq!(w.pop_due(SimTime::from_millis(4_999)), None);
        assert!(w.pop_due(SimTime::from_secs(5)).is_some());
    }

    #[test]
    fn cancellation_is_lazy_but_honest() {
        let mut w = TimerWheel::new();
        let a = w.schedule(SimTime::from_secs(1), "a");
        let b = w.schedule(SimTime::from_secs(2), "b");
        assert_eq!(w.len(), 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel must report false");
        assert_eq!(w.len(), 1);
        // The cancelled entry never surfaces; next_deadline skips it.
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(2)));
        let due = w.pop_due(SimTime::from_secs(10)).unwrap();
        assert_eq!(due.item, "b");
        assert!(!w.cancel(b), "fired tickets cannot be cancelled");
        assert!(w.is_empty());
    }

    #[test]
    fn foreign_tickets_rejected() {
        let mut w = TimerWheel::<u32>::new();
        let other = {
            let mut o = TimerWheel::new();
            o.schedule(SimTime::ZERO, 1u32);
            o.schedule(SimTime::ZERO, 2u32)
        };
        assert!(!w.cancel(other), "ticket from another wheel");
    }

    #[test]
    fn next_deadline_tracks_the_frontier() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.schedule(SimTime::from_secs(7), 0u8);
        let near = w.schedule(SimTime::from_secs(2), 1u8);
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(2)));
        w.cancel(near);
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn reschedule_pattern_round_trips() {
        // The scheduler's steady-state loop: pop, act, schedule again.
        let mut w = TimerWheel::new();
        let period = Duration::from_secs(10);
        w.schedule(SimTime::ZERO.plus(period), "kw");
        let mut fired = 0;
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now = now.plus(period);
            while let Some(due) = w.pop_due(now) {
                fired += 1;
                w.schedule(due.at.plus(period), due.item);
            }
        }
        assert_eq!(fired, 100);
        assert_eq!(w.len(), 1);
    }
}
