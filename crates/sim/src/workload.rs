//! Workload generators for the experiments.
//!
//! Two client-population shapes drive the benchmark harness:
//!
//! * **Open loop** — requests arrive by an arrival process regardless of
//!   completion (Poisson, uniform, or bursty on/off), modelling "a large
//!   number of clients that need to know the CPU load of a remote compute
//!   resource" (§5.1 of the paper).
//! * **Closed loop** — a fixed population of clients that each issue a
//!   request, wait for the reply, think, and repeat; used for the
//!   separate-vs-unified service comparisons (Figures 2–4).

use crate::rng::SplitMix64;
use std::time::Duration;

/// An arrival process producing inter-arrival gaps.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate per second.
        rate_per_sec: f64,
    },
    /// Evenly spaced arrivals at `rate_per_sec`.
    Uniform {
        /// Arrival rate per second.
        rate_per_sec: f64,
    },
    /// Markov-modulated on/off bursts: Poisson at `burst_rate_per_sec`
    /// while "on", silent while "off", with exponentially distributed
    /// phase durations.
    Bursty {
        /// Arrival rate inside a burst.
        burst_rate_per_sec: f64,
        /// Mean duration of an on-phase.
        mean_on: Duration,
        /// Mean duration of an off-phase.
        mean_off: Duration,
    },
}

/// Iterator-style generator of arrival offsets from time zero.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SplitMix64,
    cursor: f64,
    /// Remaining seconds of the current on-phase (bursty only).
    on_left: f64,
}

impl ArrivalGen {
    /// Start a generator for the given process and seed.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let on_left = match &process {
            ArrivalProcess::Bursty { mean_on, .. } => rng.exponential(mean_on.as_secs_f64()),
            _ => 0.0,
        };
        ArrivalGen {
            process,
            rng,
            cursor: 0.0,
            on_left,
        }
    }

    /// Absolute offset of the next arrival, from experiment start.
    pub fn next_arrival(&mut self) -> Duration {
        let gap = match &self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                self.rng.exponential(1.0 / rate_per_sec.max(1e-12))
            }
            ArrivalProcess::Uniform { rate_per_sec } => 1.0 / rate_per_sec.max(1e-12),
            ArrivalProcess::Bursty {
                burst_rate_per_sec,
                mean_on,
                mean_off,
            } => {
                let mut gap = self.rng.exponential(1.0 / burst_rate_per_sec.max(1e-12));
                // Consume on-time; whenever the on-phase is exhausted,
                // insert an off-phase and start a new on-phase.
                while gap > self.on_left {
                    gap -= self.on_left;
                    let off = self.rng.exponential(mean_off.as_secs_f64());
                    self.cursor += off;
                    self.on_left = self.rng.exponential(mean_on.as_secs_f64());
                }
                self.on_left -= gap;
                gap
            }
        };
        self.cursor += gap;
        Duration::from_secs_f64(self.cursor)
    }

    /// Generate all arrivals within `[0, horizon)`.
    pub fn arrivals_until(&mut self, horizon: Duration) -> Vec<Duration> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// The kind of request a mixed grid workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// An information query (`(info=...)`).
    InfoQuery,
    /// A job submission (`(executable=...)`).
    JobSubmit,
}

/// A mixed information-query / job-submission workload: the traffic shape
/// of a production grid client in Figure 2 / Figure 4 of the paper.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Probability that any given request is an information query.
    pub info_fraction: f64,
    rng: SplitMix64,
}

impl MixedWorkload {
    /// A workload where `info_fraction` of requests are information
    /// queries and the rest are job submissions.
    pub fn new(info_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&info_fraction),
            "info_fraction out of range"
        );
        MixedWorkload {
            info_fraction,
            rng: SplitMix64::new(seed),
        }
    }

    /// Draw the next request kind.
    pub fn next_kind(&mut self) -> RequestKind {
        if self.rng.chance(self.info_fraction) {
            RequestKind::InfoQuery
        } else {
            RequestKind::JobSubmit
        }
    }

    /// Draw a sequence of `n` request kinds.
    pub fn take(&mut self, n: usize) -> Vec<RequestKind> {
        (0..n).map(|_| self.next_kind()).collect()
    }
}

/// Think-time model for closed-loop clients.
#[derive(Debug, Clone)]
pub enum ThinkTime {
    /// No pause between requests (stress mode).
    None,
    /// Fixed pause.
    Fixed(Duration),
    /// Exponentially distributed pause with the given mean.
    Exponential(Duration),
}

impl ThinkTime {
    /// Draw one think-time.
    pub fn sample(&self, rng: &mut SplitMix64) -> Duration {
        match self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Fixed(d) => *d,
            ThinkTime::Exponential(mean) => {
                Duration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_approximately_held() {
        let mut g = ArrivalGen::new(
            ArrivalProcess::Poisson {
                rate_per_sec: 100.0,
            },
            1,
        );
        let arrivals = g.arrivals_until(Duration::from_secs(50));
        let rate = arrivals.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn uniform_evenly_spaced() {
        let mut g = ArrivalGen::new(ArrivalProcess::Uniform { rate_per_sec: 10.0 }, 2);
        let a = g.next_arrival();
        let b = g.next_arrival();
        assert!((b.as_secs_f64() - a.as_secs_f64() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn arrivals_monotonic() {
        let mut g = ArrivalGen::new(
            ArrivalProcess::Bursty {
                burst_rate_per_sec: 200.0,
                mean_on: Duration::from_millis(100),
                mean_off: Duration::from_millis(400),
            },
            3,
        );
        let xs = g.arrivals_until(Duration::from_secs(10));
        assert!(!xs.is_empty());
        for w in xs.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bursty_rate_lower_than_burst_rate() {
        let mut g = ArrivalGen::new(
            ArrivalProcess::Bursty {
                burst_rate_per_sec: 1000.0,
                mean_on: Duration::from_millis(100),
                mean_off: Duration::from_millis(300),
            },
            4,
        );
        let xs = g.arrivals_until(Duration::from_secs(20));
        let rate = xs.len() as f64 / 20.0;
        // Duty cycle is ~25%, so the effective rate should be well below
        // the in-burst rate and in the rough vicinity of 250/s.
        assert!(rate < 600.0, "rate {rate}");
        assert!(rate > 80.0, "rate {rate}");
    }

    #[test]
    fn mixed_workload_fraction() {
        let mut w = MixedWorkload::new(0.75, 5);
        let kinds = w.take(10_000);
        let infos = kinds
            .iter()
            .filter(|k| **k == RequestKind::InfoQuery)
            .count();
        let frac = infos as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn mixed_workload_extremes() {
        let mut all_info = MixedWorkload::new(1.0, 6);
        assert!(all_info
            .take(100)
            .iter()
            .all(|k| *k == RequestKind::InfoQuery));
        let mut all_jobs = MixedWorkload::new(0.0, 7);
        assert!(all_jobs
            .take(100)
            .iter()
            .all(|k| *k == RequestKind::JobSubmit));
    }

    #[test]
    fn think_time_models() {
        let mut rng = SplitMix64::new(8);
        assert_eq!(ThinkTime::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            ThinkTime::Fixed(Duration::from_millis(7)).sample(&mut rng),
            Duration::from_millis(7)
        );
        let mean = Duration::from_millis(50);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| ThinkTime::Exponential(mean).sample(&mut rng).as_secs_f64())
            .sum();
        assert!((total / n as f64 - 0.05).abs() < 0.005);
    }
}
