//! Lock-order and blocking-section analysis (facade).
//!
//! The engine lives in the instrumented sync shim
//! ([`parking_lot::lockdep`]) because that is the only layer that sees
//! every `Mutex`/`RwLock`/`Condvar` operation in the workspace; this
//! module re-exports it under the `sim` umbrella next to the other
//! correctness substrates (`sim::model`, `sim::fault`) and is the name
//! the rest of the workspace should use.
//!
//! # Quick tour
//!
//! - [`enabled`] — process-wide gate (`INFOGRAM_LOCKDEP`, defaulting to
//!   on in debug builds, off in release).
//! - `Mutex::with_class(v, lock_class!("info.sub.hub_state"))` — name a
//!   lock class; unlabeled locks are classed by creation site. The
//!   class catalog and the allowed acquisition order are documented in
//!   DESIGN §13.
//! - [`blocking_point`] — declare "this call may block unboundedly";
//!   any guard held here (outside the point's allow list) is reported.
//!   Declared points in this crate: `sim.par.fan_out_join` (the scope
//!   join in [`crate::par::fan_out_bounded`]) and `sim.clock.sleep`
//!   (both clocks; [`crate::timer::TimerWheel`] drivers block through
//!   the latter, so the timer needs no point of its own).
//! - [`capture`] — divert reports into a buffer for tests that provoke
//!   violations on purpose.
//! - [`counts`] — `lockdep.classes/edges/findings`, exported through
//!   `obs::Telemetry` into the `(info=metrics)` payload.
//!
//! Findings print as `LOCKDEP: ...` lines on stderr;
//! `scripts/check_lockdep.sh` runs the concurrency-heavy suites with
//! the gate forced on and fails on any such line.

pub use parking_lot::lockdep::{
    blocking_point, capture, counts, enabled, register_class, Counts, Report, ReportKind,
};
