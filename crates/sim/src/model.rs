//! A mini CHESS/Loom-style schedule explorer for the concurrency core.
//!
//! Feature-gated (`--features model`), this module turns a small
//! multi-threaded *scenario* — a closure that spawns 2–4 logical threads
//! via [`spawn`] / [`fan_out`](crate::fan_out) and exercises shared
//! state — into a systematically explored state space: every
//! synchronization operation performed through the workspace's
//! `parking_lot` shim (lock, unlock, read, write, condvar wait/notify)
//! becomes a *schedule point*, and [`explore`] re-runs the scenario
//! under depth-first enumeration of the scheduler's choices at those
//! points until the space is exhausted, a bound is hit, or an execution
//! fails (panics, asserts, or deadlocks).
//!
//! # How it works
//!
//! One logical thread runs at a time, cooperative-scheduler style: a
//! process-wide token (`Exec::current`) names the only thread allowed to
//! make progress, and every schedule point hands the token back to
//! [`pick_next`], which either replays a recorded choice (to reach the
//! previously unexplored branch) or records a new [`Choice`] with the
//! set of runnable alternatives. Backtracking flips the deepest choice
//! with remaining alternatives and replays the prefix — same prefix,
//! same runnable sets, so replay is exact.
//!
//! Time is virtual: each execution gets a fresh [`ManualClock`]
//! (obtainable inside the scenario via [`virtual_clock`]), and when
//! every live thread is blocked on [`Clock::sleep`](crate::Clock::sleep)
//! the explorer advances the clock to the earliest deadline —
//! discrete-event style, so timeout logic explores deterministically
//! with no real waiting.
//!
//! # Bounds and pruning
//!
//! * **Preemption bounding** (CHESS): switching away from a thread that
//!   could have continued costs one preemption; schedules are explored
//!   only up to [`Config::preemption_bound`] preemptions. Forced
//!   switches (the running thread blocked) are free. Most real
//!   concurrency bugs need ≤ 2 preemptions.
//! * **Sync-point granularity**: threads are interleaved at
//!   synchronization operations, not between arbitrary instructions, so
//!   data races on unsynchronized non-atomic state are out of scope
//!   (Rust's type system already excludes them in safe code). Releases
//!   are bookkeeping-only — the releaser keeps running until its next
//!   schedule point.
//! * **`notify_one` wakes the longest-waiting thread** rather than
//!   branching over every waiter (the workspace only uses
//!   `notify_all`).
//!
//! # Failure reporting
//!
//! A panic in any scenario thread, a deadlock (every live thread
//! blocked with no clock sleeper to advance), a replay divergence, or a
//! step-budget blowout aborts the execution: the scheduler records the
//! first failure, sets the abort flag, and every parked thread unwinds
//! via a private [`ModelAbort`] panic payload. [`explore`] returns the
//! failure plus the exact schedule (the sequence of chosen thread ids)
//! that produced it.

use crate::clock::{Clock, ManualClock, SimTime};
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, PoisonError};

thread_local! {
    /// The logical thread id of the current OS thread within the active
    /// exploration, if any. Doubles as the "tracked" flag for the
    /// parking_lot hooks.
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `Exec::current` value meaning "no modeled thread holds the token"
/// (the scheduler is idle while a natively-blocked thread, e.g. a
/// fan-out caller joining its scope, makes progress outside the model).
const NATIVE_IDLE: usize = usize::MAX;

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop after this many executions even if branches remain.
    pub max_executions: usize,
    /// CHESS-style preemption bound; `usize::MAX` disables pruning.
    pub preemption_bound: usize,
    /// Per-execution schedule-point budget; exceeding it is reported as
    /// a violation (livelock guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 4000,
            preemption_bound: 2,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// The default bounds, overridden by environment variables:
    /// `EXHAUSTIVE=1` lifts the preemption bound and raises the
    /// execution budget (the `scripts/check_model.sh` knob);
    /// `MODEL_MAX_EXECUTIONS` / `MODEL_PREEMPTION_BOUND` set the bounds
    /// directly.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if std::env::var("EXHAUSTIVE")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            cfg.max_executions = 200_000;
            cfg.preemption_bound = usize::MAX;
        }
        if let Some(n) = env_usize("MODEL_MAX_EXECUTIONS") {
            cfg.max_executions = n;
        }
        if let Some(n) = env_usize("MODEL_PREEMPTION_BOUND") {
            cfg.preemption_bound = n;
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A schedule that broke an invariant, with the evidence to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong (panic message, deadlock report, …).
    pub message: String,
    /// The sequence of thread ids chosen at each schedule point.
    pub schedule: Vec<usize>,
}

/// What an exploration covered and found.
#[derive(Debug)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: usize,
    /// Whether the bounded space was exhausted (no branch left).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub violation: Option<Violation>,
}

/// One scheduling decision: which runnable thread got the token, and
/// which others could have (still to be explored).
struct Choice {
    chosen: usize,
    alternatives: Vec<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Block {
    Mutex(u64),
    RwRead(u64),
    RwWrite(u64),
    Cv(u64),
    Join(usize),
    /// Sleeping on the virtual clock until the given absolute nanos.
    Clock(u64),
    /// Blocked outside the model (e.g. joining a `std::thread::scope`);
    /// progresses natively, so never a deadlock participant.
    Native,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Default)]
struct RwState {
    writer: Option<usize>,
    readers: usize,
}

/// The state of one execution (one schedule) of the scenario.
struct Exec {
    threads: Vec<TState>,
    current: usize,
    mutexes: HashMap<u64, usize>,
    rws: HashMap<u64, RwState>,
    cv_waiters: HashMap<u64, Vec<usize>>,
    /// Replay prefix + extension: `schedule[..step]` has been decided.
    schedule: Vec<Choice>,
    step: usize,
    preemptions: usize,
    preemption_bound: usize,
    max_steps: usize,
    abort: bool,
    failure: Option<String>,
    clock: Arc<ManualClock>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// The process-wide scheduler slot. `state` is `Some` only while an
/// execution is in flight; [`RUN_LOCK`] serializes explorations.
struct Scheduler {
    state: StdMutex<Option<Exec>>,
    cv: StdCondvar,
}

static SCHED: Scheduler = Scheduler {
    state: StdMutex::new(None),
    cv: StdCondvar::new(),
};

static RUN_LOCK: StdMutex<()> = StdMutex::new(());

/// Panic payload used to unwind scenario threads when an execution
/// aborts. Filtered out of panic reporting and never treated as a
/// scenario failure itself.
struct ModelAbort;

type SchedGuard = MutexGuard<'static, Option<Exec>>;

fn sched_lock() -> SchedGuard {
    SCHED.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn cur_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

/// Record the first failure and abort the execution.
fn fail(ex: &mut Exec, message: String) {
    if ex.failure.is_none() {
        ex.failure = Some(message);
    }
    ex.abort = true;
}

/// The scheduler core: called (under the `SCHED` lock) by whichever
/// thread is giving up the token. Picks the next thread to run,
/// advancing the virtual clock or parking on a natively-blocked thread
/// when nobody is runnable, and failing on deadlock.
fn pick_next(ex: &mut Exec) {
    if ex.abort {
        return;
    }
    loop {
        // Wake clock sleepers whose deadline has passed (the clock may
        // also be advanced explicitly by scenario code).
        let now = ex.clock.now().as_nanos();
        for st in ex.threads.iter_mut() {
            if matches!(st, TState::Blocked(Block::Clock(dl)) if *dl <= now) {
                *st = TState::Runnable;
            }
        }
        let runnable: Vec<usize> = ex
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == TState::Runnable)
            .map(|(t, _)| t)
            .collect();
        if !runnable.is_empty() {
            if ex.step >= ex.max_steps {
                fail(
                    ex,
                    format!(
                        "schedule-point budget exceeded ({} steps): livelock or unbounded loop",
                        ex.max_steps
                    ),
                );
                return;
            }
            let prev = ex.current;
            let prev_runnable =
                prev != NATIVE_IDLE && matches!(ex.threads.get(prev), Some(TState::Runnable));
            let chosen = if ex.step < ex.schedule.len() {
                // Replay: the prefix must reproduce exactly.
                let c = ex.schedule[ex.step].chosen;
                if !runnable.contains(&c) {
                    fail(
                        ex,
                        format!(
                            "replay divergence at step {}: thread {c} not runnable (runnable: {runnable:?})",
                            ex.step
                        ),
                    );
                    return;
                }
                c
            } else if prev_runnable {
                // Voluntary schedule point: continuing is free, anything
                // else costs a preemption — only offered under budget.
                let alternatives = if ex.preemptions < ex.preemption_bound {
                    runnable.iter().copied().filter(|&t| t != prev).collect()
                } else {
                    Vec::new()
                };
                ex.schedule.push(Choice {
                    chosen: prev,
                    alternatives,
                });
                prev
            } else {
                // Forced switch: any runnable thread, no preemption cost.
                let c = runnable[0];
                ex.schedule.push(Choice {
                    chosen: c,
                    alternatives: runnable[1..].to_vec(),
                });
                c
            };
            if prev_runnable && chosen != prev {
                ex.preemptions += 1;
            }
            ex.step += 1;
            ex.current = chosen;
            return;
        }
        if ex.threads.iter().all(|st| matches!(st, TState::Finished)) {
            return;
        }
        // Nobody runnable: advance virtual time to the earliest sleeper…
        let next_deadline = ex
            .threads
            .iter()
            .filter_map(|st| match st {
                TState::Blocked(Block::Clock(dl)) => Some(*dl),
                _ => None,
            })
            .min();
        if let Some(dl) = next_deadline {
            ex.clock.set(SimTime::from_nanos(dl));
            continue;
        }
        // …or idle while a natively-blocked thread makes progress…
        if ex
            .threads
            .iter()
            .any(|st| matches!(st, TState::Blocked(Block::Native)))
        {
            ex.current = NATIVE_IDLE;
            return;
        }
        // …or report the deadlock.
        fail(
            ex,
            format!("deadlock: every live thread is blocked: {:?}", ex.threads),
        );
        return;
    }
}

/// Park until the token is ours (consumes the guard). Panics with
/// [`ModelAbort`] if the execution aborts while parked.
fn block_until_mine(mut g: SchedGuard, me: usize) {
    loop {
        match g.as_mut() {
            None => return,
            Some(ex) => {
                if ex.abort {
                    drop(g);
                    panic::panic_any(ModelAbort);
                }
                if ex.current == me && ex.threads[me] == TState::Runnable {
                    return;
                }
            }
        }
        g = SCHED.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

/// A voluntary schedule point: offer the token around, then wait for it
/// back. No-op outside an exploration.
pub fn yield_point() {
    let Some(me) = cur_tid() else { return };
    let mut g = sched_lock();
    let Some(ex) = g.as_mut() else { return };
    if ex.abort {
        drop(g);
        panic::panic_any(ModelAbort);
    }
    pick_next(ex);
    SCHED.cv.notify_all();
    block_until_mine(g, me);
}

/// Block `me` with the given reason and hand the token on; returns once
/// `me` is runnable and scheduled again.
fn block_and_switch(mut g: SchedGuard, me: usize, why: Block) {
    if let Some(ex) = g.as_mut() {
        ex.threads[me] = TState::Blocked(why);
        pick_next(ex);
    }
    SCHED.cv.notify_all();
    block_until_mine(g, me);
}

// ---------------------------------------------------------------------
// parking_lot hook implementation
// ---------------------------------------------------------------------

struct ModelHooks;

impl ModelHooks {
    /// Blocking model-level acquire: schedule point, then loop
    /// "take it if free, else block until the holder releases".
    fn acquire(
        me: usize,
        can_take: impl Fn(&mut Exec) -> bool,
        take: impl Fn(&mut Exec, usize),
        why: Block,
    ) {
        yield_point();
        loop {
            let mut g = sched_lock();
            let Some(ex) = g.as_mut() else { return };
            if ex.abort {
                drop(g);
                panic::panic_any(ModelAbort);
            }
            if can_take(ex) {
                take(ex, me);
                return;
            }
            block_and_switch(g, me, why.clone());
        }
    }

    fn release_mutex(id: u64) {
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else { return };
        ex.mutexes.remove(&id);
        for st in ex.threads.iter_mut() {
            if *st == TState::Blocked(Block::Mutex(id)) {
                *st = TState::Runnable;
            }
        }
        // Non-blocking: the releaser keeps the token until its next
        // schedule point (safe during Drop and unwinding).
    }
}

impl parking_lot::hooks::SyncHooks for ModelHooks {
    fn tracked(&self) -> bool {
        cur_tid().is_some()
    }

    fn mutex_lock(&self, id: u64) {
        let Some(me) = cur_tid() else { return };
        ModelHooks::acquire(
            me,
            move |ex| !ex.mutexes.contains_key(&id),
            move |ex, me| {
                ex.mutexes.insert(id, me);
            },
            Block::Mutex(id),
        );
    }

    fn mutex_try_lock(&self, id: u64) -> bool {
        let Some(me) = cur_tid() else { return true };
        yield_point();
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else { return true };
        if ex.abort {
            drop(g);
            panic::panic_any(ModelAbort);
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = ex.mutexes.entry(id) {
            slot.insert(me);
            true
        } else {
            false
        }
    }

    fn mutex_unlock(&self, id: u64) {
        ModelHooks::release_mutex(id);
    }

    fn rw_read(&self, id: u64) {
        let Some(me) = cur_tid() else { return };
        ModelHooks::acquire(
            me,
            move |ex| ex.rws.entry(id).or_default().writer.is_none(),
            move |ex, _| {
                ex.rws.entry(id).or_default().readers += 1;
            },
            Block::RwRead(id),
        );
    }

    fn rw_unread(&self, id: u64) {
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else { return };
        let st = ex.rws.entry(id).or_default();
        st.readers = st.readers.saturating_sub(1);
        if st.readers == 0 {
            for t in ex.threads.iter_mut() {
                if *t == TState::Blocked(Block::RwWrite(id)) {
                    *t = TState::Runnable;
                }
            }
        }
    }

    fn rw_write(&self, id: u64) {
        let Some(me) = cur_tid() else { return };
        ModelHooks::acquire(
            me,
            move |ex| {
                let st = ex.rws.entry(id).or_default();
                st.writer.is_none() && st.readers == 0
            },
            move |ex, me| {
                ex.rws.entry(id).or_default().writer = Some(me);
            },
            Block::RwWrite(id),
        );
    }

    fn rw_unwrite(&self, id: u64) {
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else { return };
        ex.rws.entry(id).or_default().writer = None;
        for t in ex.threads.iter_mut() {
            if matches!(
                t,
                TState::Blocked(Block::RwRead(i)) | TState::Blocked(Block::RwWrite(i)) if *i == id
            ) {
                *t = TState::Runnable;
            }
        }
    }

    fn condvar_wait(&self, cv: u64, mutex: u64) {
        let Some(me) = cur_tid() else { return };
        // Release the model mutex (the caller already dropped the real
        // lock), register as a waiter, and park.
        {
            let mut g = sched_lock();
            let Some(ex) = g.as_mut() else { return };
            if ex.abort {
                drop(g);
                panic::panic_any(ModelAbort);
            }
            ex.mutexes.remove(&mutex);
            for st in ex.threads.iter_mut() {
                if *st == TState::Blocked(Block::Mutex(mutex)) {
                    *st = TState::Runnable;
                }
            }
            ex.cv_waiters.entry(cv).or_default().push(me);
            block_and_switch(g, me, Block::Cv(cv));
        }
        // Woken: re-acquire the model mutex before returning (the shim
        // then retakes the — free — real lock).
        loop {
            let mut g = sched_lock();
            let Some(ex) = g.as_mut() else { return };
            if ex.abort {
                drop(g);
                panic::panic_any(ModelAbort);
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = ex.mutexes.entry(mutex) {
                slot.insert(me);
                return;
            }
            block_and_switch(g, me, Block::Mutex(mutex));
        }
    }

    fn condvar_notify(&self, cv: u64, all: bool) {
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else { return };
        let woken: Vec<usize> = match ex.cv_waiters.get_mut(&cv) {
            None => Vec::new(),
            Some(ws) if all => std::mem::take(ws),
            Some(ws) if ws.is_empty() => Vec::new(),
            Some(ws) => vec![ws.remove(0)],
        };
        for t in woken {
            ex.threads[t] = TState::Runnable;
        }
        // Non-blocking, like the releases.
    }
}

static MODEL_HOOKS: ModelHooks = ModelHooks;

// ---------------------------------------------------------------------
// Scenario-facing API: spawn/join, clock, fan-out integration
// ---------------------------------------------------------------------

/// Handle to a logical thread started with [`spawn`].
pub struct JoinHandle {
    tid: usize,
}

/// Spawn a logical thread inside the running scenario. Must only be
/// called from scenario code (panics otherwise).
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let Some(me) = cur_tid() else {
        panic!("model::spawn called outside an exploration");
    };
    let tid;
    {
        let mut g = sched_lock();
        let Some(ex) = g.as_mut() else {
            panic!("model::spawn called outside an exploration");
        };
        tid = ex.threads.len();
        ex.threads.push(TState::Runnable);
    }
    let os = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            TID.with(|t| t.set(Some(tid)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                block_until_mine(sched_lock(), tid);
                f();
            }));
            finish_thread(tid, result);
        });
    match os {
        Ok(handle) => {
            let mut g = sched_lock();
            if let Some(ex) = g.as_mut() {
                ex.os_handles.push(handle);
            }
        }
        Err(e) => {
            let mut g = sched_lock();
            if let Some(ex) = g.as_mut() {
                ex.threads[tid] = TState::Finished;
                fail(ex, format!("OS thread spawn failed: {e}"));
            }
        }
    }
    // Give the child (and everyone else) a chance to run first.
    yield_point();
    let _ = me;
    JoinHandle { tid }
}

fn finish_thread(tid: usize, result: Result<(), Box<dyn std::any::Any + Send>>) {
    let mut g = sched_lock();
    if let Some(ex) = g.as_mut() {
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() {
                fail(
                    ex,
                    format!("thread {tid} panicked: {}", payload_msg(payload.as_ref())),
                );
            }
        }
        ex.threads[tid] = TState::Finished;
        for st in ex.threads.iter_mut() {
            if *st == TState::Blocked(Block::Join(tid)) {
                *st = TState::Runnable;
            }
        }
        pick_next(ex);
    }
    drop(g);
    SCHED.cv.notify_all();
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl JoinHandle {
    /// Wait for the thread to finish (a schedule point).
    pub fn join(self) {
        let Some(me) = cur_tid() else { return };
        loop {
            let mut g = sched_lock();
            let Some(ex) = g.as_mut() else { return };
            if ex.abort {
                drop(g);
                panic::panic_any(ModelAbort);
            }
            if ex.threads[self.tid] == TState::Finished {
                return;
            }
            block_and_switch(g, me, Block::Join(self.tid));
        }
    }
}

/// The execution's virtual clock. Scenario code hands this (as a
/// `SharedClock`) to the components under test; sleeping on it parks at
/// the scheduler, which auto-advances time discrete-event style.
/// Returns a fresh clock when no exploration is active.
pub fn virtual_clock() -> Arc<ManualClock> {
    let g = sched_lock();
    match g.as_ref() {
        Some(ex) => Arc::clone(&ex.clock),
        None => ManualClock::new(),
    }
}

/// Called by `ManualClock::sleep` under the `model` feature: park on
/// the virtual clock until `deadline`. Returns `false` (caller spins as
/// usual) when no exploration is active or the clock is not the
/// execution's clock.
pub(crate) fn manual_clock_sleep(clock: &ManualClock, deadline: SimTime) -> bool {
    let Some(me) = cur_tid() else { return false };
    let g = sched_lock();
    let Some(ex) = g.as_ref() else { return false };
    if !std::ptr::eq(clock, Arc::as_ptr(&ex.clock)) {
        return false;
    }
    if ex.clock.now() >= deadline {
        drop(g);
        yield_point();
        return true;
    }
    block_and_switch(g, me, Block::Clock(deadline.as_nanos()));
    true
}

/// Pre-register `helpers` fan-out worker threads, returning their
/// logical ids in spawn order (deterministic across replays). Empty
/// when no exploration is active.
pub fn scope_begin(helpers: usize) -> Vec<usize> {
    if cur_tid().is_none() {
        return Vec::new();
    }
    let mut g = sched_lock();
    let Some(ex) = g.as_mut() else {
        return Vec::new();
    };
    (0..helpers)
        .map(|_| {
            ex.threads.push(TState::Runnable);
            ex.threads.len() - 1
        })
        .collect()
}

/// RAII registration of one scoped fan-out worker: `enter` adopts the
/// pre-assigned id and waits to be scheduled; dropping (normal return
/// *or* unwind) marks the thread finished and hands the token on.
pub struct ScopedWorker {
    tid: Option<usize>,
}

impl ScopedWorker {
    /// Adopt the given logical id on this OS thread (no-op on `None`).
    pub fn enter(tid: Option<usize>) -> ScopedWorker {
        if let Some(t) = tid {
            TID.with(|c| c.set(Some(t)));
            block_until_mine(sched_lock(), t);
        }
        ScopedWorker { tid }
    }
}

impl Drop for ScopedWorker {
    fn drop(&mut self) {
        let Some(t) = self.tid else { return };
        TID.with(|c| c.set(None));
        let mut g = sched_lock();
        if let Some(ex) = g.as_mut() {
            ex.threads[t] = TState::Finished;
            pick_next(ex);
        }
        drop(g);
        SCHED.cv.notify_all();
    }
}

/// The fan-out caller is about to block natively (joining its scope):
/// hand the token on without waiting. Paired with [`caller_reacquire`].
pub fn caller_release() {
    let Some(me) = cur_tid() else { return };
    let mut g = sched_lock();
    let Some(ex) = g.as_mut() else { return };
    if ex.abort {
        drop(g);
        panic::panic_any(ModelAbort);
    }
    ex.threads[me] = TState::Blocked(Block::Native);
    pick_next(ex);
    drop(g);
    SCHED.cv.notify_all();
}

/// The fan-out caller finished its native wait: rejoin the scheduled
/// world (waits for the token).
pub fn caller_reacquire() {
    let Some(me) = cur_tid() else { return };
    let mut g = sched_lock();
    let Some(ex) = g.as_mut() else { return };
    if ex.abort {
        drop(g);
        panic::panic_any(ModelAbort);
    }
    ex.threads[me] = TState::Runnable;
    if ex.current == NATIVE_IDLE {
        pick_next(ex);
        SCHED.cv.notify_all();
    }
    block_until_mine(g, me);
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

fn install_panic_filter() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Model-thread panics are expected control flow (aborted
            // executions, failing schedules re-run thousands of times);
            // everything else keeps the previous reporting.
            if info.payload().is::<ModelAbort>() || cur_tid().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Run one execution of the scenario under the given replay prefix.
/// Returns the full recorded schedule and the failure, if any.
fn run_once(
    config: &Config,
    replay: Vec<Choice>,
    scenario: &dyn Fn(),
) -> (Vec<Choice>, Option<String>) {
    {
        let mut g = sched_lock();
        *g = Some(Exec {
            threads: vec![TState::Runnable],
            current: 0,
            mutexes: HashMap::new(),
            rws: HashMap::new(),
            cv_waiters: HashMap::new(),
            schedule: replay,
            step: 0,
            preemptions: 0,
            preemption_bound: config.preemption_bound,
            max_steps: config.max_steps,
            abort: false,
            failure: None,
            clock: ManualClock::new(),
            os_handles: Vec::new(),
        });
    }
    TID.with(|t| t.set(Some(0)));
    let result = panic::catch_unwind(AssertUnwindSafe(scenario));
    let handles;
    {
        let mut g = sched_lock();
        if let Some(ex) = g.as_mut() {
            if let Err(payload) = result {
                if !payload.is::<ModelAbort>() {
                    fail(
                        ex,
                        format!("scenario panicked: {}", payload_msg(payload.as_ref())),
                    );
                }
            }
            let live = ex
                .threads
                .iter()
                .skip(1)
                .filter(|st| !matches!(st, TState::Finished))
                .count();
            if live > 0 && ex.failure.is_none() {
                fail(
                    ex,
                    format!("scenario returned with {live} unjoined live threads"),
                );
            }
            ex.threads[0] = TState::Finished;
            pick_next(ex);
            handles = std::mem::take(&mut ex.os_handles);
        } else {
            handles = Vec::new();
        }
    }
    SCHED.cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
    TID.with(|t| t.set(None));
    let mut g = sched_lock();
    match g.take() {
        Some(ex) => (ex.schedule, ex.failure),
        None => (Vec::new(), Some("execution state vanished".to_string())),
    }
}

/// Systematically explore the scenario's schedules under `config`.
///
/// The scenario runs as logical thread 0 and may [`spawn`] logical
/// threads, use [`fan_out`](crate::fan_out), take `parking_lot`
/// locks, wait on condvars, and sleep on [`virtual_clock`]. It is
/// re-executed once per schedule, so it must be self-contained: build
/// fresh state each call.
pub fn explore<F: Fn()>(config: &Config, scenario: F) -> Report {
    let _serial = RUN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    parking_lot::hooks::install(&MODEL_HOOKS);
    install_panic_filter();
    let mut report = Report {
        executions: 0,
        complete: false,
        violation: None,
    };
    let mut replay: Vec<Choice> = Vec::new();
    loop {
        report.executions += 1;
        let (mut schedule, failure) = run_once(config, replay, &scenario);
        if let Some(message) = failure {
            report.violation = Some(Violation {
                message,
                schedule: schedule.iter().map(|c| c.chosen).collect(),
            });
            return report;
        }
        // Backtrack: flip the deepest choice with an unexplored branch.
        loop {
            match schedule.last_mut() {
                None => {
                    report.complete = true;
                    return report;
                }
                Some(c) if !c.alternatives.is_empty() => {
                    c.chosen = c.alternatives.remove(0);
                    break;
                }
                Some(_) => {
                    schedule.pop();
                }
            }
        }
        if report.executions >= config.max_executions {
            return report;
        }
        replay = schedule;
    }
}

/// Explore with [`Config::from_env`] and panic on any violation —
/// the assertion form used by the model test suites.
pub fn check<F: Fn()>(name: &str, scenario: F) {
    let report = explore(&Config::from_env(), scenario);
    if let Some(v) = &report.violation {
        panic!(
            "model check '{name}' failed after {} executions\nschedule: {:?}\n{}",
            report.executions, v.schedule, v.message
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::{Condvar, Mutex};
    use std::time::Duration;

    fn small() -> Config {
        Config {
            max_executions: 20_000,
            preemption_bound: usize::MAX,
            max_steps: 5_000,
        }
    }

    #[test]
    fn finds_lost_update_race() {
        // Classic read-yield-write: two increments can both read 0.
        let report = explore(&small(), || {
            let counter = Arc::new(Mutex::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                handles.push(spawn(move || {
                    let v = *counter.lock();
                    yield_point();
                    *counter.lock() = v + 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2, "lost update");
        });
        let v = report.violation.as_ref();
        assert!(
            v.is_some_and(|v| v.message.contains("lost update")),
            "{report:?}"
        );
    }

    #[test]
    fn clean_increment_verifies() {
        let report = explore(&small(), || {
            let counter = Arc::new(Mutex::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                handles.push(spawn(move || {
                    *counter.lock() += 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.violation.is_none(), "{report:?}");
        assert!(report.complete, "{report:?}");
        assert!(report.executions > 1, "must actually branch: {report:?}");
    }

    #[test]
    fn detects_ab_ba_deadlock() {
        let report = explore(&small(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = spawn(move || {
                let _gb = b3.lock();
                let _ga = a3.lock();
            });
            t1.join();
            t2.join();
        });
        let v = report.violation.as_ref();
        assert!(
            v.is_some_and(|v| v.message.contains("deadlock")),
            "{report:?}"
        );
    }

    #[test]
    fn condvar_handoff_has_no_lost_wakeup() {
        check("condvar handoff", || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = spawn(move || {
                let (lock, cv) = &*p2;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
            waiter.join();
        });
    }

    #[test]
    fn missing_notify_is_reported_as_deadlock() {
        let report = explore(&small(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = spawn(move || {
                let (lock, cv) = &*p2;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            // Sets the flag but forgets to notify.
            *pair.0.lock() = true;
            waiter.join();
        });
        let v = report.violation.as_ref();
        assert!(
            v.is_some_and(|v| v.message.contains("deadlock")),
            "{report:?}"
        );
    }

    #[test]
    fn virtual_clock_auto_advances_sleepers() {
        check("clock auto-advance", || {
            let clock = virtual_clock();
            let flag = Arc::new(Mutex::new(false));
            let (c2, f2) = (Arc::clone(&clock), Arc::clone(&flag));
            let sleeper = spawn(move || {
                use crate::Clock;
                c2.sleep(Duration::from_secs(1));
                *f2.lock() = true;
            });
            sleeper.join();
            assert!(*flag.lock());
            assert!(clock.now() >= SimTime::from_secs(1));
        });
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        let report = explore(&small(), || {
            let shared = Arc::new(parking_lot::RwLock::new((0u32, 0u32)));
            let s2 = Arc::clone(&shared);
            let writer = spawn(move || {
                let mut g = s2.write();
                g.0 += 1;
                yield_point();
                g.1 += 1;
            });
            let s3 = Arc::clone(&shared);
            let reader = spawn(move || {
                let g = s3.read();
                assert_eq!(g.0, g.1, "reader saw a torn write");
            });
            writer.join();
            reader.join();
        });
        assert!(report.violation.is_none(), "{report:?}");
    }

    #[test]
    fn fan_out_preserves_order_under_model() {
        check("fan-out order", || {
            let items: Vec<u32> = vec![10, 20, 30];
            let out = crate::fan_out_bounded(&items, 2, |i, x| (i, *x * 2));
            assert_eq!(out, vec![(0, 20), (1, 40), (2, 60)]);
        });
    }

    #[test]
    fn fan_out_runs_each_item_once_under_model() {
        check("fan-out exactly-once", || {
            let counts = Arc::new(Mutex::new([0u32; 3]));
            let items = [0usize, 1, 2];
            let c2 = Arc::clone(&counts);
            crate::fan_out_bounded(&items, 3, move |_, &i| {
                c2.lock()[i] += 1;
            });
            assert_eq!(*counts.lock(), [1, 1, 1]);
        });
    }

    #[test]
    fn preemption_bound_limits_exploration() {
        // With a bound of 0 the only schedule is "run to completion in
        // spawn order" — a single execution, and the lost-update bug
        // escapes. The bound trades soundness for speed, visibly.
        let bounded = Config {
            max_executions: 20_000,
            preemption_bound: 0,
            max_steps: 5_000,
        };
        let report = explore(&bounded, || {
            let counter = Arc::new(Mutex::new(0));
            let c1 = Arc::clone(&counter);
            let t1 = spawn(move || {
                let v = *c1.lock();
                yield_point();
                *c1.lock() = v + 1;
            });
            let c2 = Arc::clone(&counter);
            let t2 = spawn(move || {
                let v = *c2.lock();
                yield_point();
                *c2.lock() = v + 1;
            });
            t1.join();
            t2.join();
            assert_eq!(*counter.lock(), 2, "lost update");
        });
        assert!(
            report.violation.is_none(),
            "bound 0 must miss the race: {report:?}"
        );
        assert!(report.complete);
    }

    #[test]
    fn violation_schedule_is_replayable() {
        // The reported schedule, replayed as a prefix, reproduces the
        // failure in execution #1.
        let scenario = || {
            let counter = Arc::new(Mutex::new(0));
            let c1 = Arc::clone(&counter);
            let t1 = spawn(move || {
                let v = *c1.lock();
                yield_point();
                *c1.lock() = v + 1;
            });
            let c2 = Arc::clone(&counter);
            let t2 = spawn(move || {
                let v = *c2.lock();
                yield_point();
                *c2.lock() = v + 1;
            });
            t1.join();
            t2.join();
            assert_eq!(*counter.lock(), 2, "lost update");
        };
        let first = explore(&small(), scenario);
        let schedule = match &first.violation {
            Some(v) => v.schedule.clone(),
            None => panic!("expected a violation: {first:?}"),
        };
        // Re-run with the failing schedule injected as the replay
        // prefix via a fresh exploration: seed run_once directly.
        let replay: Vec<Choice> = schedule
            .iter()
            .map(|&chosen| Choice {
                chosen,
                alternatives: Vec::new(),
            })
            .collect();
        let _serial = RUN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let (_, failure) = run_once(&small(), replay, &scenario);
        assert!(
            failure.is_some_and(|f| f.contains("lost update")),
            "replaying the reported schedule must reproduce the failure"
        );
    }
}
