//! Time sources.
//!
//! All time-dependent behaviour in the InfoGram stack (TTL expiry,
//! degradation functions, authorization contract windows, performance
//! measurement) is written against the [`Clock`] trait so that tests and
//! benchmarks can drive a [`ManualClock`] deterministically while the
//! runnable services use the [`SystemClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point on the simulation timeline, in nanoseconds since an arbitrary
/// epoch (process start for [`SystemClock`], zero for [`ManualClock`]).
///
/// `SimTime` is a plain `u64` wrapper so it is `Copy`, totally ordered, and
/// cheap to stamp onto every cached attribute.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero point of the timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (clocks shared across threads may race by a few ns).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// This time advanced by `d`, saturating at the maximum representable
    /// time.
    pub fn plus(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// This time moved back by `d`, saturating at zero.
    pub fn minus(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(d.as_nanos() as u64))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

/// A monotonic time source.
///
/// Implementations must be cheap to call and safe to share across threads.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time.
    fn now(&self) -> SimTime;

    /// Block the calling thread until at least `d` has elapsed on this
    /// clock.
    ///
    /// The [`SystemClock`] really sleeps; the [`ManualClock`] spins waiting
    /// for another thread to advance time, yielding between polls, so tests
    /// that sleep on a manual clock must advance it from somewhere else.
    fn sleep(&self, d: Duration);
}

/// Shared handle to a clock. Services clone this freely.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time, measured from process start.
#[derive(Debug)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }

    /// Convenience: a shareable system clock.
    pub fn shared() -> SharedClock {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> SimTime {
        SimTime(self.origin.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        // Zero-duration sleeps (a deadline already due) never park, so
        // they are not blocking points.
        if !d.is_zero() {
            crate::lockdep::blocking_point("sim.clock.sleep", &[]);
        }
        std::thread::sleep(d);
    }
}

/// A virtual clock advanced explicitly by the test or benchmark harness.
///
/// `ManualClock` is the workhorse of the deterministic experiments: the TTL
/// cache (E5), degradation (E6), response modes (E7), and contract (E13)
/// benchmarks all sweep simulated hours through it without real waiting.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `t = 0`.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock {
            nanos: AtomicU64::new(0),
        })
    }

    /// A clock starting at the given time.
    pub fn starting_at(t: SimTime) -> Arc<Self> {
        Arc::new(ManualClock {
            nanos: AtomicU64::new(t.0),
        })
    }

    /// Advance the clock by `d`, waking any sleepers whose deadline passed.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute time. Panics if `t` is in the past —
    /// the clock must stay monotonic.
    pub fn set(&self, t: SimTime) {
        let prev = self.nanos.swap(t.0, Ordering::SeqCst);
        assert!(prev <= t.0, "ManualClock must not move backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        // A manual-clock sleep blocks until *another thread* advances
        // time — holding a lock here can starve the advancing thread.
        if !d.is_zero() {
            crate::lockdep::blocking_point("sim.clock.sleep", &[]);
        }
        let deadline = self.now().plus(d);
        // Under the model checker, sleeping on the execution's clock
        // parks at the scheduler, which advances virtual time to the
        // earliest deadline once every live thread is blocked.
        #[cfg(feature = "model")]
        if crate::model::manual_clock_sleep(self, deadline) {
            return;
        }
        while self.now() < deadline {
            // A schedule point per poll so a sleep on a clock nobody
            // advances surfaces as a step-budget violation instead of
            // hanging an exploration. No-op outside the model.
            #[cfg(feature = "model")]
            crate::model::yield_point();
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_millis(1_500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!(t.plus(Duration::from_millis(500)), SimTime::from_secs(2));
        assert_eq!(t.minus(Duration::from_secs(10)), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(3).since(SimTime::from_secs(1)),
            Duration::from_secs(2)
        );
        // `since` saturates rather than underflowing.
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
        c.set(SimTime::from_secs(100));
        assert_eq!(c.now(), SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::new();
        c.advance(Duration::from_secs(10));
        c.set(SimTime::from_secs(1));
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        let before = c.now();
        c.sleep(Duration::from_millis(2));
        assert!(c.now().since(before) >= Duration::from_millis(2));
    }

    #[test]
    fn manual_clock_sleep_wakes_on_advance() {
        let c = ManualClock::new();
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.sleep(Duration::from_secs(1));
            c2.now()
        });
        // Give the sleeper a moment to start spinning, then advance.
        std::thread::sleep(Duration::from_millis(5));
        c.advance(Duration::from_secs(2));
        let woke_at = h.join().unwrap();
        assert!(woke_at >= SimTime::from_secs(1));
    }
}
