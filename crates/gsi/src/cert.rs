//! Certificates, certificate authorities, proxy delegation, and chain
//! validation.
//!
//! See the crate-level security disclaimer: signatures are keyed 64-bit
//! digests, modelling the *protocol*, not the cryptography.

use crate::dn::Dn;
use infogram_sim::{SimTime, SplitMix64};
use std::time::Duration;

/// A "public" key. In this simulation the public key doubles as the MAC
/// key, so verification is possible for anyone who has it (and so is
/// forgery — see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub u64);

/// A key pair. The private half is the same value; the distinction is kept
/// in the API so call sites read like real PKI code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    key: u64,
}

impl KeyPair {
    /// Generate a key pair from the given RNG.
    pub fn generate(rng: &mut SplitMix64) -> Self {
        KeyPair {
            key: rng.next_u64() | 1, // never zero
        }
    }

    /// The shareable half.
    pub fn public(&self) -> PublicKey {
        PublicKey(self.key)
    }

    /// MAC-style signature over arbitrary bytes.
    pub fn sign(&self, data: &[u8]) -> u64 {
        mac(self.key, data)
    }
}

impl PublicKey {
    /// Verify a signature produced by the matching [`KeyPair`].
    pub fn verify(&self, data: &[u8], signature: u64) -> bool {
        mac(self.0, data) == signature
    }
}

/// FNV-1a over the key bytes then the data, finished with a SplitMix
/// scramble. Fast, stable, good enough for a toy MAC.
fn mac(key: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes().iter().chain(data.iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // scramble
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// What kind of certificate this is; validation rules differ per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertType {
    /// A certificate authority, allowed to sign other certificates.
    Ca,
    /// An end entity (user or host), not allowed to sign certificates but
    /// allowed to sign proxies.
    EndEntity,
    /// A delegated proxy; `depth_remaining` limits further delegation.
    Proxy {
        /// How many more delegation steps this proxy may perform.
        depth_remaining: u32,
    },
}

/// A certificate binding a subject DN to a public key, signed by an
/// issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Who this certificate identifies.
    pub subject: Dn,
    /// Who signed it.
    pub issuer: Dn,
    /// Issuer-unique serial number.
    pub serial: u64,
    /// Start of validity.
    pub not_before: SimTime,
    /// End of validity.
    pub not_after: SimTime,
    /// The subject's public key.
    pub subject_key: PublicKey,
    /// Kind of certificate.
    pub cert_type: CertType,
    /// Issuer's signature over the canonical encoding.
    pub signature: u64,
}

impl Certificate {
    /// Canonical byte encoding of everything except the signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(self.subject.to_string().as_bytes());
        out.push(0);
        out.extend_from_slice(self.issuer.to_string().as_bytes());
        out.push(0);
        out.extend_from_slice(&self.serial.to_le_bytes());
        out.extend_from_slice(&self.not_before.as_nanos().to_le_bytes());
        out.extend_from_slice(&self.not_after.as_nanos().to_le_bytes());
        out.extend_from_slice(&self.subject_key.0.to_le_bytes());
        let type_tag: u64 = match self.cert_type {
            CertType::Ca => u64::MAX,
            CertType::EndEntity => u64::MAX - 1,
            CertType::Proxy { depth_remaining } => depth_remaining as u64,
        };
        out.extend_from_slice(&type_tag.to_le_bytes());
        out
    }

    /// Whether the certificate is within its validity window at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        self.not_before <= now && now < self.not_after
    }
}

/// Why a certificate chain failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// Chain was empty.
    EmptyChain,
    /// A certificate is outside its validity window.
    Expired {
        /// Subject of the offending certificate.
        subject: String,
    },
    /// A signature did not verify.
    BadSignature {
        /// Subject of the offending certificate.
        subject: String,
    },
    /// The issuer of one link does not match the subject of the next.
    BrokenChain {
        /// The mismatched issuer.
        expected_issuer: String,
        /// What was found instead.
        found: String,
    },
    /// The chain does not terminate at a trusted root.
    UntrustedRoot {
        /// Root subject that was not in the trust store.
        root: String,
    },
    /// A non-CA certificate was used to sign a (non-proxy) certificate.
    NotACa {
        /// Subject of the offending signer.
        subject: String,
    },
    /// A proxy rule was violated (naming or delegation depth).
    ProxyViolation {
        /// Explanation of the violated rule.
        reason: String,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::EmptyChain => write!(f, "empty certificate chain"),
            CertError::Expired { subject } => write!(f, "certificate expired: {subject}"),
            CertError::BadSignature { subject } => {
                write!(f, "bad signature on certificate: {subject}")
            }
            CertError::BrokenChain {
                expected_issuer,
                found,
            } => write!(
                f,
                "broken chain: expected issuer {expected_issuer}, found {found}"
            ),
            CertError::UntrustedRoot { root } => write!(f, "untrusted root: {root}"),
            CertError::NotACa { subject } => write!(f, "signer is not a CA: {subject}"),
            CertError::ProxyViolation { reason } => write!(f, "proxy violation: {reason}"),
        }
    }
}

impl std::error::Error for CertError {}

/// A credential: a private key plus the certificate chain proving the
/// identity of its public half (leaf first, ending just below the root).
#[derive(Debug, Clone)]
pub struct Credential {
    /// Private key matching `chain[0].subject_key`.
    pub key: KeyPair,
    /// Certificate chain, leaf first.
    pub chain: Vec<Certificate>,
}

impl Credential {
    /// The identity this credential asserts (the leaf subject).
    pub fn subject(&self) -> &Dn {
        &self.chain[0].subject
    }

    /// The end-entity identity with proxy RDNs stripped.
    pub fn base_identity(&self) -> Dn {
        self.chain[0].subject.base_identity()
    }

    /// Delegate a proxy credential: a fresh key pair certified by this
    /// credential, named `<subject>/CN=proxy`, valid for `lifetime` from
    /// `now`, able to delegate `depth` further times.
    ///
    /// Fails if this credential is itself a proxy with no delegation depth
    /// left.
    pub fn delegate(
        &self,
        rng: &mut SplitMix64,
        now: SimTime,
        lifetime: Duration,
        depth: u32,
    ) -> Result<Credential, CertError> {
        let leaf = &self.chain[0];
        let allowed_depth = match leaf.cert_type {
            CertType::Proxy { depth_remaining } => {
                if depth_remaining == 0 {
                    return Err(CertError::ProxyViolation {
                        reason: "delegation depth exhausted".to_string(),
                    });
                }
                depth.min(depth_remaining - 1)
            }
            CertType::EndEntity => depth,
            CertType::Ca => {
                return Err(CertError::ProxyViolation {
                    reason: "CAs do not delegate proxies".to_string(),
                })
            }
        };
        let key = KeyPair::generate(rng);
        let mut cert = Certificate {
            subject: leaf.subject.child("CN", "proxy"),
            issuer: leaf.subject.clone(),
            serial: rng.next_u64(),
            not_before: now,
            // A proxy may not outlive its signer.
            not_after: now.plus(lifetime).min(leaf.not_after),
            subject_key: key.public(),
            cert_type: CertType::Proxy {
                depth_remaining: allowed_depth,
            },
            signature: 0,
        };
        cert.signature = self.key.sign(&cert.signed_bytes());
        let mut chain = Vec::with_capacity(self.chain.len() + 1);
        chain.push(cert);
        chain.extend(self.chain.iter().cloned());
        Ok(Credential { key, chain })
    }
}

/// A certificate authority that issues end-entity certificates.
#[derive(Debug)]
pub struct CertificateAuthority {
    key: KeyPair,
    cert: Certificate,
    next_serial: std::sync::atomic::AtomicU64,
}

impl CertificateAuthority {
    /// A new self-signed root CA.
    pub fn new_root(name: &Dn, rng: &mut SplitMix64, now: SimTime, lifetime: Duration) -> Self {
        let key = KeyPair::generate(rng);
        let mut cert = Certificate {
            subject: name.clone(),
            issuer: name.clone(),
            serial: 1,
            not_before: now,
            not_after: now.plus(lifetime),
            subject_key: key.public(),
            cert_type: CertType::Ca,
            signature: 0,
        };
        cert.signature = key.sign(&cert.signed_bytes());
        CertificateAuthority {
            key,
            cert,
            next_serial: std::sync::atomic::AtomicU64::new(2),
        }
    }

    /// The CA's own (self-signed) certificate — the trust anchor.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Issue an end-entity credential for `subject`.
    pub fn issue(
        &self,
        subject: &Dn,
        rng: &mut SplitMix64,
        now: SimTime,
        lifetime: Duration,
    ) -> Credential {
        let key = KeyPair::generate(rng);
        let serial = self
            .next_serial
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut cert = Certificate {
            subject: subject.clone(),
            issuer: self.cert.subject.clone(),
            serial,
            not_before: now,
            not_after: now.plus(lifetime).min(self.cert.not_after),
            subject_key: key.public(),
            cert_type: CertType::EndEntity,
            signature: 0,
        };
        cert.signature = self.key.sign(&cert.signed_bytes());
        Credential {
            key,
            chain: vec![cert],
        }
    }
}

/// Validate a chain (leaf first) against a set of trusted root
/// certificates at time `now`. On success, returns the chain's *base
/// identity* — the end-entity DN with proxy RDNs stripped.
pub fn verify_chain(
    chain: &[Certificate],
    trust_roots: &[Certificate],
    now: SimTime,
) -> Result<Dn, CertError> {
    if chain.is_empty() {
        return Err(CertError::EmptyChain);
    }
    // Walk from leaf to the certificate below the root.
    let mut proxy_depth_above: Option<u32> = None;
    for (i, cert) in chain.iter().enumerate() {
        if !cert.valid_at(now) {
            return Err(CertError::Expired {
                subject: cert.subject.to_string(),
            });
        }
        // Proxy naming and depth rules.
        match cert.cert_type {
            CertType::Proxy { depth_remaining } => {
                if !cert.subject.is_proxy_name()
                    || !cert.subject.is_immediate_child_of(&cert.issuer)
                {
                    return Err(CertError::ProxyViolation {
                        reason: format!(
                            "proxy subject {} must extend issuer {} with CN=proxy",
                            cert.subject, cert.issuer
                        ),
                    });
                }
                if let Some(below) = proxy_depth_above {
                    // Walking leaf → root: each signer's advertised depth
                    // must strictly dominate the proxy it signed.
                    if depth_remaining <= below {
                        return Err(CertError::ProxyViolation {
                            reason: "delegation depth does not decrease".to_string(),
                        });
                    }
                }
                proxy_depth_above = Some(depth_remaining);
            }
            _ => {
                if proxy_depth_above.take().is_some() && i == 0 {
                    unreachable!("proxy accounting starts at leaf");
                }
            }
        }
        // Find the signer: the next chain element, or a trust root.
        let signer = if i + 1 < chain.len() {
            &chain[i + 1]
        } else {
            match trust_roots.iter().find(|r| r.subject == cert.issuer) {
                Some(root) => root,
                None => {
                    // Self-signed trusted root included in the chain?
                    if cert.issuer == cert.subject && trust_roots.iter().any(|r| r == cert) {
                        cert
                    } else {
                        return Err(CertError::UntrustedRoot {
                            root: cert.issuer.to_string(),
                        });
                    }
                }
            }
        };
        if signer.subject != cert.issuer {
            return Err(CertError::BrokenChain {
                expected_issuer: cert.issuer.to_string(),
                found: signer.subject.to_string(),
            });
        }
        // Signing authority: CAs sign anything; end entities and proxies
        // sign only proxies.
        match (signer.cert_type, cert.cert_type) {
            (CertType::Ca, _) => {}
            (_, CertType::Proxy { .. }) => {}
            _ => {
                return Err(CertError::NotACa {
                    subject: signer.subject.to_string(),
                });
            }
        }
        if !signer
            .subject_key
            .verify(&cert.signed_bytes(), cert.signature)
        {
            return Err(CertError::BadSignature {
                subject: cert.subject.to_string(),
            });
        }
    }
    Ok(chain[0].subject.base_identity())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CertificateAuthority, SplitMix64) {
        let mut rng = SplitMix64::new(99);
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Simulated Root CA"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(10 * 365 * 86_400),
        );
        (ca, rng)
    }

    fn year() -> Duration {
        Duration::from_secs(365 * 86_400)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = SplitMix64::new(1);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"hello grid");
        assert!(kp.public().verify(b"hello grid", sig));
        assert!(!kp.public().verify(b"hello grid!", sig));
        let other = KeyPair::generate(&mut rng);
        assert!(!other.public().verify(b"hello grid", sig));
    }

    #[test]
    fn issue_and_verify_end_entity() {
        let (ca, mut rng) = setup();
        let user = Dn::user("Grid", "ANL", "Gregor von Laszewski");
        let cred = ca.issue(&user, &mut rng, SimTime::ZERO, year());
        let id = verify_chain(
            &cred.chain,
            &[ca.certificate().clone()],
            SimTime::from_secs(100),
        )
        .unwrap();
        assert_eq!(id, user);
    }

    #[test]
    fn expired_cert_rejected() {
        let (ca, mut rng) = setup();
        let cred = ca.issue(
            &Dn::user("Grid", "ANL", "Shortlived"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(3600),
        );
        let late = SimTime::from_secs(7200);
        match verify_chain(&cred.chain, &[ca.certificate().clone()], late) {
            Err(CertError::Expired { .. }) => {}
            other => panic!("{other:?}"),
        }
        // Not yet valid is also rejected: not_before in the future.
        let mut cert = cred.chain[0].clone();
        cert.not_before = SimTime::from_secs(1_000_000);
        cert.not_after = SimTime::from_secs(2_000_000);
        assert!(!cert.valid_at(SimTime::from_secs(10)));
    }

    #[test]
    fn tampered_cert_rejected() {
        let (ca, mut rng) = setup();
        let mut cred = ca.issue(
            &Dn::user("Grid", "ANL", "Honest User"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        cred.chain[0].subject = Dn::user("Grid", "ANL", "Mallory");
        match verify_chain(&cred.chain, &[ca.certificate().clone()], SimTime::ZERO) {
            Err(CertError::BadSignature { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untrusted_root_rejected() {
        let (ca, mut rng) = setup();
        let rogue = CertificateAuthority::new_root(
            &Dn::user("Rogue", "CA", "Evil Root"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        let cred = rogue.issue(
            &Dn::user("Grid", "ANL", "Impostor"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        match verify_chain(&cred.chain, &[ca.certificate().clone()], SimTime::ZERO) {
            Err(CertError::UntrustedRoot { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn proxy_delegation_and_identity() {
        let (ca, mut rng) = setup();
        let user = Dn::user("Grid", "ANL", "Ian Foster");
        let cred = ca.issue(&user, &mut rng, SimTime::ZERO, year());
        let proxy = cred
            .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(43_200), 3)
            .unwrap();
        assert!(proxy.subject().is_proxy_name());
        assert_eq!(proxy.base_identity(), user);
        let id = verify_chain(
            &proxy.chain,
            &[ca.certificate().clone()],
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(id, user, "verification resolves to the base identity");
    }

    #[test]
    fn multi_level_delegation() {
        let (ca, mut rng) = setup();
        let user = Dn::user("Grid", "ANL", "Deep Delegator");
        let cred = ca.issue(&user, &mut rng, SimTime::ZERO, year());
        let p1 = cred.delegate(&mut rng, SimTime::ZERO, year(), 2).unwrap();
        let p2 = p1.delegate(&mut rng, SimTime::ZERO, year(), 9).unwrap();
        // Depth capped by parent: p1 had 2, so p2 gets at most 1.
        assert_eq!(
            p2.chain[0].cert_type,
            CertType::Proxy { depth_remaining: 1 }
        );
        let p3 = p2.delegate(&mut rng, SimTime::ZERO, year(), 9).unwrap();
        assert_eq!(
            p3.chain[0].cert_type,
            CertType::Proxy { depth_remaining: 0 }
        );
        // Exhausted.
        match p3.delegate(&mut rng, SimTime::ZERO, year(), 1) {
            Err(CertError::ProxyViolation { .. }) => {}
            other => panic!("{other:?}"),
        }
        // Full chain still validates to the base identity.
        let id = verify_chain(&p3.chain, &[ca.certificate().clone()], SimTime::ZERO).unwrap();
        assert_eq!(id, user);
    }

    #[test]
    fn proxy_cannot_outlive_signer() {
        let (ca, mut rng) = setup();
        let cred = ca.issue(
            &Dn::user("Grid", "ANL", "Shortie"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(1000),
        );
        let proxy = cred
            .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(10_000), 0)
            .unwrap();
        assert_eq!(proxy.chain[0].not_after, SimTime::from_secs(1000));
    }

    #[test]
    fn expired_proxy_rejected_even_if_base_valid() {
        let (ca, mut rng) = setup();
        let cred = ca.issue(
            &Dn::user("Grid", "ANL", "ProxyUser"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        let proxy = cred
            .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(3600), 0)
            .unwrap();
        match verify_chain(
            &proxy.chain,
            &[ca.certificate().clone()],
            SimTime::from_secs(4000),
        ) {
            Err(CertError::Expired { subject }) => assert!(subject.contains("proxy")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_entity_cannot_sign_end_entity() {
        let (ca, mut rng) = setup();
        let signer = ca.issue(
            &Dn::user("Grid", "ANL", "NotACa"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        // Hand-forge a non-proxy cert signed by an end entity.
        let victim_key = KeyPair::generate(&mut rng);
        let mut forged = Certificate {
            subject: Dn::user("Grid", "ANL", "Forged"),
            issuer: signer.subject().clone(),
            serial: 666,
            not_before: SimTime::ZERO,
            not_after: SimTime::from_secs(1_000_000),
            subject_key: victim_key.public(),
            cert_type: CertType::EndEntity,
            signature: 0,
        };
        forged.signature = signer.key.sign(&forged.signed_bytes());
        let chain = vec![forged, signer.chain[0].clone()];
        match verify_chain(&chain, &[ca.certificate().clone()], SimTime::ZERO) {
            Err(CertError::NotACa { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_chain_rejected() {
        let (ca, _rng) = setup();
        assert_eq!(
            verify_chain(&[], &[ca.certificate().clone()], SimTime::ZERO),
            Err(CertError::EmptyChain)
        );
    }

    #[test]
    fn proxy_with_bad_name_rejected() {
        let (ca, mut rng) = setup();
        let cred = ca.issue(
            &Dn::user("Grid", "ANL", "NameChecked"),
            &mut rng,
            SimTime::ZERO,
            year(),
        );
        let mut proxy = cred.delegate(&mut rng, SimTime::ZERO, year(), 0).unwrap();
        // Corrupt the proxy's subject so it no longer extends the issuer,
        // and re-sign it properly so only the naming rule trips.
        proxy.chain[0].subject = Dn::user("Grid", "ANL", "Unrelated");
        proxy.chain[0].signature = cred.key.sign(&proxy.chain[0].signed_bytes());
        match verify_chain(&proxy.chain, &[ca.certificate().clone()], SimTime::ZERO) {
            Err(CertError::ProxyViolation { .. }) => {}
            other => panic!("{other:?}"),
        }
    }
}
