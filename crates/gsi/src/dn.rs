//! Distinguished names.
//!
//! Grid identities are X.500 distinguished names written in the Globus
//! slash form, e.g. `/O=Grid/OU=ANL/CN=Gregor von Laszewski`. The MDS
//! baseline also renders the LDAP comma form (`CN=..., OU=..., O=...`).

use std::fmt;

/// An ordered distinguished name: a sequence of `attribute=value` RDNs
/// from root-most (`O=`) to leaf-most (`CN=`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dn {
    rdns: Vec<(String, String)>,
}

/// Error parsing a DN string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnParseError {
    /// Explanation of what was malformed.
    pub reason: String,
}

impl fmt::Display for DnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.reason)
    }
}

impl std::error::Error for DnParseError {}

impl Dn {
    /// Build from `(attribute, value)` pairs, root-most first.
    pub fn from_rdns(rdns: Vec<(String, String)>) -> Result<Self, DnParseError> {
        if rdns.is_empty() {
            return Err(DnParseError {
                reason: "empty DN".to_string(),
            });
        }
        for (a, v) in &rdns {
            if a.is_empty() || v.is_empty() {
                return Err(DnParseError {
                    reason: format!("empty attribute or value in RDN '{a}={v}'"),
                });
            }
            if a.contains('/') || v.contains('/') || a.contains('=') || v.contains('=') {
                return Err(DnParseError {
                    reason: format!("reserved character in RDN '{a}={v}'"),
                });
            }
        }
        Ok(Dn { rdns })
    }

    /// Parse the Globus slash form: `/O=Grid/OU=ANL/CN=Name`.
    pub fn parse(s: &str) -> Result<Self, DnParseError> {
        let s = s.trim();
        let body = s.strip_prefix('/').ok_or_else(|| DnParseError {
            reason: format!("'{s}' does not start with '/'"),
        })?;
        let mut rdns = Vec::new();
        for part in body.split('/') {
            let (a, v) = part.split_once('=').ok_or_else(|| DnParseError {
                reason: format!("RDN '{part}' lacks '='"),
            })?;
            rdns.push((a.trim().to_string(), v.trim().to_string()));
        }
        Dn::from_rdns(rdns)
    }

    /// Convenience constructor for tests and examples:
    /// `Dn::user("Grid", "ANL", "Gregor von Laszewski")`.
    pub fn user(org: &str, unit: &str, common_name: &str) -> Self {
        Dn::from_rdns(vec![
            ("O".to_string(), org.to_string()),
            ("OU".to_string(), unit.to_string()),
            ("CN".to_string(), common_name.to_string()),
        ])
        // lint:allow(unwrap) — fixed RDN keys; from_rdns only rejects empty/invalid keys
        .expect("static RDNs are valid")
    }

    /// The RDN sequence, root-most first.
    pub fn rdns(&self) -> &[(String, String)] {
        &self.rdns
    }

    /// The leaf-most common name, if the last RDN is a `CN`.
    pub fn common_name(&self) -> Option<&str> {
        self.rdns
            .last()
            .filter(|(a, _)| a.eq_ignore_ascii_case("CN"))
            .map(|(_, v)| v.as_str())
    }

    /// A child DN with one extra RDN appended — how proxy certificates
    /// extend their signer's identity (`.../CN=proxy`).
    pub fn child(&self, attr: &str, value: &str) -> Dn {
        let mut rdns = self.rdns.clone();
        rdns.push((attr.to_string(), value.to_string()));
        Dn { rdns }
    }

    /// Whether `self` is `other` with exactly one extra RDN on the end.
    pub fn is_immediate_child_of(&self, other: &Dn) -> bool {
        self.rdns.len() == other.rdns.len() + 1 && self.rdns[..other.rdns.len()] == other.rdns
    }

    /// Whether this DN names a GSI proxy (leaf RDN is `CN=proxy` or
    /// `CN=limited proxy`).
    pub fn is_proxy_name(&self) -> bool {
        matches!(
            self.rdns.last(),
            Some((a, v)) if a.eq_ignore_ascii_case("CN")
                && (v == "proxy" || v == "limited proxy")
        )
    }

    /// Strip trailing proxy RDNs to recover the end-entity identity.
    pub fn base_identity(&self) -> Dn {
        let mut rdns = self.rdns.clone();
        while rdns.len() > 1 {
            let last_is_proxy = matches!(
                rdns.last(),
                Some((a, v)) if a.eq_ignore_ascii_case("CN")
                    && (v == "proxy" || v == "limited proxy")
            );
            if last_is_proxy {
                rdns.pop();
            } else {
                break;
            }
        }
        Dn { rdns }
    }

    /// Render in the LDAP comma form, leaf-most first:
    /// `CN=Name, OU=ANL, O=Grid`.
    pub fn to_ldap_string(&self) -> String {
        self.rdns
            .iter()
            .rev()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for Dn {
    /// The Globus slash form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (a, v) in &self.rdns {
            write!(f, "/{a}={v}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Dn {
    type Err = DnParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "/O=Grid/OU=ANL/CN=Gregor von Laszewski";
        let dn = Dn::parse(s).unwrap();
        assert_eq!(dn.to_string(), s);
        assert_eq!(dn.common_name(), Some("Gregor von Laszewski"));
        assert_eq!(dn.rdns().len(), 3);
    }

    #[test]
    fn ldap_form() {
        let dn = Dn::user("Grid", "ANL", "Jarek Gawor");
        assert_eq!(dn.to_ldap_string(), "CN=Jarek Gawor, OU=ANL, O=Grid");
    }

    #[test]
    fn parse_errors() {
        assert!(Dn::parse("").is_err());
        assert!(Dn::parse("no-slash").is_err());
        assert!(Dn::parse("/O=Grid/CN").is_err());
        assert!(Dn::parse("/=x").is_err());
        assert!(Dn::parse("/O=").is_err());
    }

    #[test]
    fn child_and_parenthood() {
        let base = Dn::user("Grid", "ANL", "Ian Foster");
        let proxy = base.child("CN", "proxy");
        assert!(proxy.is_immediate_child_of(&base));
        assert!(!base.is_immediate_child_of(&proxy));
        assert!(proxy.is_proxy_name());
        assert!(!base.is_proxy_name());
    }

    #[test]
    fn base_identity_strips_proxies() {
        let base = Dn::user("Grid", "ANL", "Carlos Pena");
        let p1 = base.child("CN", "proxy");
        let p2 = p1.child("CN", "limited proxy");
        assert_eq!(p2.base_identity(), base);
        assert_eq!(base.base_identity(), base);
    }

    #[test]
    fn dn_equality_and_hash() {
        use std::collections::HashSet;
        let a = Dn::parse("/O=Grid/CN=X").unwrap();
        let b = Dn::parse("/O=Grid/CN=X").unwrap();
        let c = Dn::parse("/O=Grid/CN=Y").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<Dn> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn whitespace_trimmed() {
        let dn = Dn::parse("  /O=Grid/CN= Spacey Name ").unwrap();
        assert_eq!(dn.common_name(), Some("Spacey Name"));
    }

    #[test]
    fn fromstr_works() {
        let dn: Dn = "/O=Grid/CN=Z".parse().unwrap();
        assert_eq!(dn.common_name(), Some("Z"));
    }
}
