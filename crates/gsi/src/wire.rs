//! Wire encoding for certificate chains.
//!
//! The gatekeeper handshake sends certificate chains as the first frames
//! of every connection. Certificates encode as text records with
//! ASCII unit/record separators (`\x1F` between fields, `\x1E` between
//! certificates), which no DN or number can contain.

use crate::cert::{CertType, Certificate, PublicKey};
use crate::dn::Dn;
use infogram_sim::SimTime;

const FIELD_SEP: char = '\x1f';
const CERT_SEP: char = '\x1e';

/// A chain failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireParseError {
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for WireParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate wire error: {}", self.reason)
    }
}

impl std::error::Error for WireParseError {}

fn err(reason: &str) -> WireParseError {
    WireParseError {
        reason: reason.to_string(),
    }
}

fn encode_cert(c: &Certificate) -> String {
    let type_str = match c.cert_type {
        CertType::Ca => "CA".to_string(),
        CertType::EndEntity => "EE".to_string(),
        CertType::Proxy { depth_remaining } => format!("P{depth_remaining}"),
    };
    [
        c.subject.to_string(),
        c.issuer.to_string(),
        c.serial.to_string(),
        c.not_before.as_nanos().to_string(),
        c.not_after.as_nanos().to_string(),
        c.subject_key.0.to_string(),
        type_str,
        c.signature.to_string(),
    ]
    .join(&FIELD_SEP.to_string())
}

fn decode_cert(s: &str) -> Result<Certificate, WireParseError> {
    let fields: Vec<&str> = s.split(FIELD_SEP).collect();
    if fields.len() != 8 {
        return Err(err(&format!("expected 8 fields, got {}", fields.len())));
    }
    let cert_type = match fields[6] {
        "CA" => CertType::Ca,
        "EE" => CertType::EndEntity,
        p => {
            let depth = p
                .strip_prefix('P')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| err(&format!("bad cert type '{p}'")))?;
            CertType::Proxy {
                depth_remaining: depth,
            }
        }
    };
    Ok(Certificate {
        subject: Dn::parse(fields[0]).map_err(|e| err(&e.to_string()))?,
        issuer: Dn::parse(fields[1]).map_err(|e| err(&e.to_string()))?,
        serial: fields[2].parse().map_err(|_| err("bad serial"))?,
        not_before: SimTime::from_nanos(fields[3].parse().map_err(|_| err("bad not_before"))?),
        not_after: SimTime::from_nanos(fields[4].parse().map_err(|_| err("bad not_after"))?),
        subject_key: PublicKey(fields[5].parse().map_err(|_| err("bad key"))?),
        cert_type,
        signature: fields[7].parse().map_err(|_| err("bad signature"))?,
    })
}

/// Encode a chain, leaf first.
pub fn encode_chain(chain: &[Certificate]) -> String {
    chain
        .iter()
        .map(encode_cert)
        .collect::<Vec<_>>()
        .join(&CERT_SEP.to_string())
}

/// Decode a chain, leaf first.
pub fn decode_chain(s: &str) -> Result<Vec<Certificate>, WireParseError> {
    if s.is_empty() {
        return Err(err("empty chain"));
    }
    s.split(CERT_SEP).map(decode_cert).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use infogram_sim::SplitMix64;
    use std::time::Duration;

    #[test]
    fn chain_roundtrip() {
        let mut rng = SplitMix64::new(5);
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Root"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400 * 365),
        );
        let user = ca.issue(
            &Dn::user("Grid", "ANL", "Wire User"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let proxy = user
            .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(3600), 2)
            .unwrap();
        let encoded = encode_chain(&proxy.chain);
        let decoded = decode_chain(&encoded).unwrap();
        assert_eq!(decoded, proxy.chain);
        // The decoded chain still validates.
        let id =
            crate::cert::verify_chain(&decoded, &[ca.certificate().clone()], SimTime::from_secs(1))
                .unwrap();
        assert_eq!(id, Dn::user("Grid", "ANL", "Wire User"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_chain("").is_err());
        assert!(decode_chain("not a cert").is_err());
        assert!(decode_chain("a\x1fb\x1fc").is_err());
        // Tampered field still decodes but signature verification will
        // fail downstream; a non-numeric serial fails here.
        let mut rng = SplitMix64::new(6);
        let ca = CertificateAuthority::new_root(
            &Dn::user("G", "C", "R"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(1000),
        );
        let enc = encode_chain(std::slice::from_ref(ca.certificate()));
        let corrupted = enc.replace(&ca.certificate().serial.to_string(), "NaN");
        assert!(decode_chain(&corrupted).is_err());
    }
}
