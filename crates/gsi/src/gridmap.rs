//! The gridmap file.
//!
//! GRAM's gatekeeper performs "a simple authorization based on mapping the
//! authentication information into a local security context (e.g., a Unix
//! login)" (§2), and J-GRAM investigates "the support for gridmaps, which
//! map user certificates to local user IDs" (§7). The file format follows
//! the classic Globus `grid-mapfile`:
//!
//! ```text
//! # comment
//! "/O=Grid/OU=ANL/CN=Gregor von Laszewski" gregor
//! "/O=Grid/OU=ANL/CN=Jarek Gawor" gawor,globus
//! ```
//!
//! Multiple local accounts are comma-separated; the first is the default.

use crate::dn::Dn;
use std::collections::HashMap;

/// Parsed gridmap: DN → local account names.
#[derive(Debug, Clone, Default)]
pub struct GridMap {
    entries: HashMap<Dn, Vec<String>>,
}

/// Error parsing a gridmap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMapParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for GridMapParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gridmap line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for GridMapParseError {}

impl GridMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse the `grid-mapfile` format.
    pub fn parse(text: &str) -> Result<Self, GridMapParseError> {
        let mut map = GridMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: String| GridMapParseError {
                line: i + 1,
                reason,
            };
            let rest = line
                .strip_prefix('"')
                .ok_or_else(|| err("DN must be double-quoted".to_string()))?;
            let (dn_str, accounts_str) = rest
                .split_once('"')
                .ok_or_else(|| err("unterminated DN quote".to_string()))?;
            let dn = Dn::parse(dn_str).map_err(|e| err(e.to_string()))?;
            let accounts: Vec<String> = accounts_str
                .trim()
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if accounts.is_empty() {
                return Err(err("no local account".to_string()));
            }
            map.entries.insert(dn, accounts);
        }
        Ok(map)
    }

    /// Add a mapping programmatically.
    pub fn add(&mut self, dn: Dn, accounts: &[&str]) {
        assert!(!accounts.is_empty(), "at least one account");
        self.entries
            .insert(dn, accounts.iter().map(|s| s.to_string()).collect());
    }

    /// The default (first) local account for a DN.
    ///
    /// Proxy DNs are resolved through their base identity, as real GSI
    /// does: a delegated proxy maps to the same account as its owner.
    pub fn lookup(&self, dn: &Dn) -> Option<&str> {
        self.entries
            .get(dn)
            .or_else(|| self.entries.get(&dn.base_identity()))
            .map(|v| v[0].as_str())
    }

    /// All permitted local accounts for a DN.
    pub fn accounts(&self, dn: &Dn) -> Option<&[String]> {
        self.entries
            .get(dn)
            .or_else(|| self.entries.get(&dn.base_identity()))
            .map(|v| v.as_slice())
    }

    /// Whether the DN may use the given local account.
    pub fn permits(&self, dn: &Dn, account: &str) -> bool {
        self.accounts(dn)
            .map(|a| a.iter().any(|x| x == account))
            .unwrap_or(false)
    }

    /// Number of mapped identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render back to the file format (sorted by DN for determinism).
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(dn, accounts)| format!("\"{dn}\" {}", accounts.join(",")))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Argonne users
"/O=Grid/OU=ANL/CN=Gregor von Laszewski" gregor
"/O=Grid/OU=ANL/CN=Jarek Gawor" gawor,globus

"/O=Grid/OU=ISI/CN=Carl Kesselman" carl
"#;

    #[test]
    fn parse_sample() {
        let map = GridMap::parse(SAMPLE).unwrap();
        assert_eq!(map.len(), 3);
        let dn = Dn::user("Grid", "ANL", "Gregor von Laszewski");
        assert_eq!(map.lookup(&dn), Some("gregor"));
    }

    #[test]
    fn multiple_accounts() {
        let map = GridMap::parse(SAMPLE).unwrap();
        let dn = Dn::user("Grid", "ANL", "Jarek Gawor");
        assert_eq!(map.lookup(&dn), Some("gawor"));
        assert!(map.permits(&dn, "globus"));
        assert!(!map.permits(&dn, "root"));
        assert_eq!(map.accounts(&dn).unwrap().len(), 2);
    }

    #[test]
    fn unknown_dn() {
        let map = GridMap::parse(SAMPLE).unwrap();
        let dn = Dn::user("Grid", "ANL", "Nobody");
        assert_eq!(map.lookup(&dn), None);
        assert!(!map.permits(&dn, "gregor"));
    }

    #[test]
    fn proxy_resolves_to_base_identity() {
        let map = GridMap::parse(SAMPLE).unwrap();
        let base = Dn::user("Grid", "ANL", "Gregor von Laszewski");
        let proxy = base.child("CN", "proxy").child("CN", "proxy");
        assert_eq!(map.lookup(&proxy), Some("gregor"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "\"/O=Grid/CN=X\" x\nnot quoted user\n";
        let err = GridMap::parse(bad).unwrap_err();
        assert_eq!(err.line, 2);

        let bad2 = "\"/O=Grid/CN=X\"\n";
        assert!(GridMap::parse(bad2).unwrap_err().reason.contains("account"));

        let bad3 = "\"/O=Grid/CN=X x\n";
        assert!(GridMap::parse(bad3)
            .unwrap_err()
            .reason
            .contains("unterminated"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let map = GridMap::parse(SAMPLE).unwrap();
        let rendered = map.render();
        let reparsed = GridMap::parse(&rendered).unwrap();
        assert_eq!(reparsed.len(), map.len());
        let dn = Dn::user("Grid", "ISI", "Carl Kesselman");
        assert_eq!(reparsed.lookup(&dn), Some("carl"));
    }

    #[test]
    fn programmatic_add() {
        let mut map = GridMap::new();
        assert!(map.is_empty());
        map.add(Dn::user("Grid", "DLR", "Andreas Schreiber"), &["andreas"]);
        assert_eq!(
            map.lookup(&Dn::user("Grid", "DLR", "Andreas Schreiber")),
            Some("andreas")
        );
    }
}
