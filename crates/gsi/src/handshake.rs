//! Mutual authentication handshake.
//!
//! Models the GSI/SSL exchange the gatekeeper runs before anything else
//! (§2: "the gatekeeper is responsible for authentication with the
//! client"). The exchange is three messages —
//!
//! 1. client → server: client chain + client nonce
//! 2. server → client: server chain + server nonce + signature over the
//!    client nonce
//! 3. client → server: signature over the server nonce
//!
//! — after which both sides hold a [`SecurityContext`]. The message count
//! is exported as [`HANDSHAKE_MESSAGES`] so the protocol-overhead
//! experiments (Figures 2/4) can charge it per connection.

use crate::cert::{verify_chain, CertError, Certificate, Credential};
use crate::dn::Dn;
use infogram_sim::{SimTime, SplitMix64};

/// Number of wire messages a full mutual handshake costs.
pub const HANDSHAKE_MESSAGES: u64 = 3;

/// Why a handshake failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// The peer's certificate chain failed validation.
    BadChain(CertError),
    /// The peer's proof-of-possession signature did not verify.
    BadProof {
        /// Which side presented the bad proof.
        side: &'static str,
    },
    /// A wire message was malformed.
    Malformed(String),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::BadChain(e) => write!(f, "handshake: {e}"),
            HandshakeError::BadProof { side } => {
                write!(f, "handshake: bad proof of possession from {side}")
            }
            HandshakeError::Malformed(s) => write!(f, "handshake: malformed message: {s}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// An established, mutually authenticated security context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityContext {
    /// The peer's base identity (proxies resolved).
    pub peer: Dn,
    /// The local party's base identity.
    pub local: Dn,
    /// When the context was established.
    pub established_at: SimTime,
}

/// Run a full mutual authentication between a client and server
/// credential, both validating against `trust_roots` at time `now`.
///
/// Returns the client-side and server-side security contexts. The wire
/// cost is [`HANDSHAKE_MESSAGES`]; callers that meter traffic must charge
/// it themselves (the transports in `infogram-proto` do).
pub fn authenticate(
    client: &Credential,
    server: &Credential,
    trust_roots: &[Certificate],
    now: SimTime,
    rng: &mut SplitMix64,
) -> Result<(SecurityContext, SecurityContext), HandshakeError> {
    // Message 1: client chain + nonce.
    let client_nonce = rng.next_u64().to_le_bytes();
    let client_id =
        verify_chain(&client.chain, trust_roots, now).map_err(HandshakeError::BadChain)?;

    // Message 2: server chain + nonce + proof over client nonce.
    let server_nonce = rng.next_u64().to_le_bytes();
    let server_id =
        verify_chain(&server.chain, trust_roots, now).map_err(HandshakeError::BadChain)?;
    let server_proof = server.key.sign(&client_nonce);
    if !server.chain[0]
        .subject_key
        .verify(&client_nonce, server_proof)
    {
        return Err(HandshakeError::BadProof { side: "server" });
    }

    // Message 3: client proof over server nonce.
    let client_proof = client.key.sign(&server_nonce);
    if !client.chain[0]
        .subject_key
        .verify(&server_nonce, client_proof)
    {
        return Err(HandshakeError::BadProof { side: "client" });
    }

    Ok((
        SecurityContext {
            peer: server_id.clone(),
            local: client_id.clone(),
            established_at: now,
        },
        SecurityContext {
            peer: client_id,
            local: server_id,
            established_at: now,
        },
    ))
}

// ---------------------------------------------------------------------
// Wire-level handshake: the same 3 messages as byte payloads, used by the
// gatekeepers over real connections.
//
//   M1  client → server   HELLO  <client nonce> <client chain>
//   M2  server → client   RESP   <server nonce> <sig over client nonce>
//                                <server chain>
//   M3  client → server   FIN    <sig over server nonce>
// ---------------------------------------------------------------------

const FIELD_SEP: char = '\x1f';
const SECTION_SEP: char = '\x1e';

fn malformed(what: &str) -> HandshakeError {
    HandshakeError::Malformed(what.to_string())
}

/// Server-side state between M1/M2 and M3.
#[derive(Debug, Clone)]
pub struct ServerPending {
    /// The client's authenticated base identity.
    pub client_identity: Dn,
    client_leaf_key: crate::cert::PublicKey,
    server_nonce: u64,
    server_identity: Dn,
    established_at: SimTime,
}

/// Client step 1: build the HELLO payload. Returns the payload and the
/// client nonce to keep for [`wire_client_finish`].
pub fn wire_client_hello(client: &Credential, rng: &mut SplitMix64) -> (Vec<u8>, u64) {
    let nonce = rng.next_u64();
    let payload = format!(
        "HELLO{FIELD_SEP}{nonce}{SECTION_SEP}{}",
        crate::wire::encode_chain(&client.chain)
    );
    (payload.into_bytes(), nonce)
}

/// Server step: validate the HELLO, produce the RESP payload and the
/// pending state for [`wire_server_verify`].
pub fn wire_server_respond(
    server: &Credential,
    trust_roots: &[Certificate],
    hello: &[u8],
    now: SimTime,
    rng: &mut SplitMix64,
) -> Result<(Vec<u8>, ServerPending), HandshakeError> {
    let text = std::str::from_utf8(hello).map_err(|_| malformed("HELLO utf-8"))?;
    let (head, chain_str) = text
        .split_once(SECTION_SEP)
        .ok_or_else(|| malformed("HELLO sections"))?;
    let (tag, nonce_str) = head
        .split_once(FIELD_SEP)
        .ok_or_else(|| malformed("HELLO header"))?;
    if tag != "HELLO" {
        return Err(malformed("HELLO tag"));
    }
    let client_nonce: u64 = nonce_str.parse().map_err(|_| malformed("HELLO nonce"))?;
    let client_chain =
        crate::wire::decode_chain(chain_str).map_err(|e| malformed(&e.to_string()))?;
    let client_identity =
        verify_chain(&client_chain, trust_roots, now).map_err(HandshakeError::BadChain)?;

    let server_nonce = rng.next_u64();
    let proof = server.key.sign(&client_nonce.to_le_bytes());
    let payload = format!(
        "RESP{FIELD_SEP}{server_nonce}{FIELD_SEP}{proof}{SECTION_SEP}{}",
        crate::wire::encode_chain(&server.chain)
    );
    Ok((
        payload.into_bytes(),
        ServerPending {
            client_identity,
            client_leaf_key: client_chain[0].subject_key,
            server_nonce,
            server_identity: server.base_identity(),
            established_at: now,
        },
    ))
}

/// Client step 2: validate the RESP, produce the FIN payload and the
/// client-side security context.
pub fn wire_client_finish(
    client: &Credential,
    trust_roots: &[Certificate],
    resp: &[u8],
    client_nonce: u64,
    now: SimTime,
) -> Result<(Vec<u8>, SecurityContext), HandshakeError> {
    let text = std::str::from_utf8(resp).map_err(|_| malformed("RESP utf-8"))?;
    let (head, chain_str) = text
        .split_once(SECTION_SEP)
        .ok_or_else(|| malformed("RESP sections"))?;
    let mut fields = head.split(FIELD_SEP);
    if fields.next() != Some("RESP") {
        return Err(malformed("RESP tag"));
    }
    let server_nonce: u64 = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("RESP nonce"))?;
    let server_proof: u64 = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("RESP proof"))?;
    let server_chain =
        crate::wire::decode_chain(chain_str).map_err(|e| malformed(&e.to_string()))?;
    let server_identity =
        verify_chain(&server_chain, trust_roots, now).map_err(HandshakeError::BadChain)?;
    if !server_chain[0]
        .subject_key
        .verify(&client_nonce.to_le_bytes(), server_proof)
    {
        return Err(HandshakeError::BadProof { side: "server" });
    }
    let fin_proof = client.key.sign(&server_nonce.to_le_bytes());
    let payload = format!("FIN{FIELD_SEP}{fin_proof}");
    Ok((
        payload.into_bytes(),
        SecurityContext {
            peer: server_identity,
            local: client.base_identity(),
            established_at: now,
        },
    ))
}

/// Server step 2: validate the FIN and produce the server-side context.
pub fn wire_server_verify(
    pending: &ServerPending,
    fin: &[u8],
) -> Result<SecurityContext, HandshakeError> {
    let text = std::str::from_utf8(fin).map_err(|_| malformed("FIN utf-8"))?;
    let (tag, proof_str) = text
        .split_once(FIELD_SEP)
        .ok_or_else(|| malformed("FIN header"))?;
    if tag != "FIN" {
        return Err(malformed("FIN tag"));
    }
    let proof: u64 = proof_str.parse().map_err(|_| malformed("FIN proof"))?;
    if !pending
        .client_leaf_key
        .verify(&pending.server_nonce.to_le_bytes(), proof)
    {
        return Err(HandshakeError::BadProof { side: "client" });
    }
    Ok(SecurityContext {
        peer: pending.client_identity.clone(),
        local: pending.server_identity.clone(),
        established_at: pending.established_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use std::time::Duration;

    struct World {
        ca: CertificateAuthority,
        rng: SplitMix64,
    }

    fn world() -> World {
        let mut rng = SplitMix64::new(7);
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Root"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(10 * 365 * 86_400),
        );
        World { ca, rng }
    }

    #[test]
    fn successful_mutual_auth() {
        let mut w = world();
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "Alice"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "gatekeeper.anl.gov"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        let (cctx, sctx) =
            authenticate(&user, &host, &roots, SimTime::from_secs(5), &mut w.rng).unwrap();
        assert_eq!(cctx.peer, Dn::user("Grid", "Hosts", "gatekeeper.anl.gov"));
        assert_eq!(sctx.peer, Dn::user("Grid", "ANL", "Alice"));
        assert_eq!(cctx.local, sctx.peer);
        assert_eq!(cctx.established_at, SimTime::from_secs(5));
    }

    #[test]
    fn proxy_authenticates_as_owner() {
        let mut w = world();
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "Bob"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let proxy = user
            .delegate(&mut w.rng, SimTime::ZERO, Duration::from_secs(3600), 0)
            .unwrap();
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "gk"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        let (_c, sctx) =
            authenticate(&proxy, &host, &roots, SimTime::from_secs(1), &mut w.rng).unwrap();
        assert_eq!(sctx.peer, Dn::user("Grid", "ANL", "Bob"));
    }

    #[test]
    fn expired_client_rejected() {
        let mut w = world();
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "Expired"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(10),
        );
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "gk"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        match authenticate(&user, &host, &roots, SimTime::from_secs(100), &mut w.rng) {
            Err(HandshakeError::BadChain(CertError::Expired { .. })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untrusted_server_rejected() {
        let mut w = world();
        let mut rogue_rng = SplitMix64::new(13);
        let rogue_ca = CertificateAuthority::new_root(
            &Dn::user("Rogue", "CA", "Evil"),
            &mut rogue_rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "Careful"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let evil_host = rogue_ca.issue(
            &Dn::user("Grid", "Hosts", "fake-gk"),
            &mut rogue_rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        match authenticate(&user, &evil_host, &roots, SimTime::ZERO, &mut w.rng) {
            Err(HandshakeError::BadChain(CertError::UntrustedRoot { .. })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn handshake_message_count_is_three() {
        // The constant the protocol-overhead experiments rely on.
        assert_eq!(HANDSHAKE_MESSAGES, 3);
    }

    #[test]
    fn wire_handshake_full_exchange() {
        let mut w = world();
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "WireAlice"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "wire-gk"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        let now = SimTime::from_secs(9);

        let (m1, client_nonce) = wire_client_hello(&user, &mut w.rng);
        let (m2, pending) = wire_server_respond(&host, &roots, &m1, now, &mut w.rng).unwrap();
        let (m3, cctx) = wire_client_finish(&user, &roots, &m2, client_nonce, now).unwrap();
        let sctx = wire_server_verify(&pending, &m3).unwrap();

        assert_eq!(cctx.peer, Dn::user("Grid", "Hosts", "wire-gk"));
        assert_eq!(sctx.peer, Dn::user("Grid", "ANL", "WireAlice"));
        assert_eq!(cctx.local, sctx.peer);
        assert_eq!(sctx.local, cctx.peer);
    }

    #[test]
    fn wire_handshake_rejects_wrong_key() {
        let mut w = world();
        let user = w.ca.issue(
            &Dn::user("Grid", "ANL", "Mallory"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "gk"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        let now = SimTime::ZERO;
        // Mallory presents Alice's chain but does not hold her key.
        let alice = w.ca.issue(
            &Dn::user("Grid", "ANL", "RealAlice"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let stolen = Credential {
            key: user.key, // wrong private key
            chain: alice.chain.clone(),
        };
        let (m1, nonce) = wire_client_hello(&stolen, &mut w.rng);
        let (m2, pending) = wire_server_respond(&host, &roots, &m1, now, &mut w.rng)
            .expect("chain itself is valid");
        let (m3, _cctx) = wire_client_finish(&stolen, &roots, &m2, nonce, now).unwrap();
        // The FIN proof is signed with the wrong key: server rejects.
        assert!(matches!(
            wire_server_verify(&pending, &m3),
            Err(HandshakeError::BadProof { side: "client" })
        ));
    }

    #[test]
    fn wire_handshake_rejects_garbage() {
        let mut w = world();
        let host = w.ca.issue(
            &Dn::user("Grid", "Hosts", "gk"),
            &mut w.rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = [w.ca.certificate().clone()];
        for noise in [&b""[..], b"HELLO", b"\xff\xfe", b"HELLO\x1fnope\x1echain"] {
            assert!(
                wire_server_respond(&host, &roots, noise, SimTime::ZERO, &mut w.rng).is_err(),
                "{noise:?} accepted"
            );
        }
    }
}
