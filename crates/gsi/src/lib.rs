#![warn(missing_docs)]

//! Simulated Grid Security Infrastructure (GSI).
//!
//! The paper's services authenticate through GSI: X.509 certificate chains
//! with proxy delegation, a gridmap file "to map Global Grid User
//! Identifiers to local account names", and (as a stated goal, §5.3)
//! authorization *contracts* such as "allow access to this resource from 3
//! to 4 pm to user X".
//!
//! This crate reproduces GSI's **protocol and policy behaviour**, not its
//! cryptography:
//!
//! * [`Dn`] — Globus-style distinguished names (`/O=Grid/CN=...`).
//! * [`cert`] — certificates, CAs, chain validation, expiry, proxy
//!   delegation with depth limits.
//! * [`gridmap`] — the gridmap file mapping DNs to local accounts.
//! * [`contract`] — time-window authorization contracts.
//! * [`handshake`] — a 3-message mutual-authentication exchange producing
//!   a [`SecurityContext`].
//!
//! # Security disclaimer
//!
//! Signatures here are keyed 64-bit digests where the "public" key *is*
//! the MAC key. Anyone holding a public key can forge signatures. This is
//! deliberate: the reproduction needs GSI's *shape* (round trips, chain
//! walks, expiry handling, gridmap and contract decisions), not real
//! confidentiality. Do not reuse this code for actual security.

pub mod cert;
pub mod contract;
pub mod dn;
pub mod gridmap;
pub mod handshake;
pub mod policy;
pub mod wire;

pub use cert::{
    verify_chain, CertError, CertType, Certificate, CertificateAuthority, Credential, KeyPair,
    PublicKey,
};
pub use contract::{Contract, SubjectMatch, Window};
pub use dn::Dn;
pub use gridmap::GridMap;
pub use handshake::{
    authenticate, wire_client_finish, wire_client_hello, wire_server_respond, wire_server_verify,
    HandshakeError, SecurityContext, ServerPending, HANDSHAKE_MESSAGES,
};
pub use policy::{Authorizer, AuthzDecision, AuthzError};
