//! Time-window authorization contracts.
//!
//! §5.3 of the paper: "we strive to include authorization that allows us
//! to specify contracts such as *allow access to this resource from 3 to 4
//! pm to user X*". A [`Contract`] grants a subject access to a named
//! resource during one or more [`Window`]s, which are either absolute
//! simulation-time intervals or daily recurring time-of-day ranges.

use crate::dn::Dn;
use infogram_sim::SimTime;

const SECS_PER_DAY: u64 = 86_400;

/// When a contract grant is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Window {
    /// Always active.
    Always,
    /// Active within `[from, until)` on the simulation timeline.
    Absolute {
        /// Start (inclusive).
        from: SimTime,
        /// End (exclusive).
        until: SimTime,
    },
    /// Active every day within `[from_sec, until_sec)` seconds-of-day.
    /// `from_sec > until_sec` wraps around midnight.
    Daily {
        /// Start second-of-day (inclusive).
        from_sec: u32,
        /// End second-of-day (exclusive).
        until_sec: u32,
    },
}

impl Window {
    /// The paper's example: 3pm–4pm daily.
    pub fn daily_hours(from_hour: u32, until_hour: u32) -> Window {
        Window::Daily {
            from_sec: from_hour * 3600,
            until_sec: until_hour * 3600,
        }
    }

    /// Whether the window is active at `now`.
    pub fn contains(&self, now: SimTime) -> bool {
        match self {
            Window::Always => true,
            Window::Absolute { from, until } => *from <= now && now < *until,
            Window::Daily {
                from_sec,
                until_sec,
            } => {
                let sod = (now.as_nanos() / 1_000_000_000 % SECS_PER_DAY) as u32;
                if from_sec <= until_sec {
                    (*from_sec..*until_sec).contains(&sod)
                } else {
                    // Wraps midnight: active if after start OR before end.
                    sod >= *from_sec || sod < *until_sec
                }
            }
        }
    }
}

/// What a contract's subject clause matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubjectMatch {
    /// Exactly this DN (proxies resolve to their base identity first).
    Exact(Dn),
    /// Any identity whose DN starts with this prefix (e.g. everyone in
    /// `/O=Grid/OU=ANL`).
    Prefix(Dn),
    /// Anyone.
    Any,
}

impl SubjectMatch {
    fn matches(&self, dn: &Dn) -> bool {
        let base = dn.base_identity();
        match self {
            SubjectMatch::Exact(want) => &base == want,
            SubjectMatch::Prefix(prefix) => {
                base.rdns().len() >= prefix.rdns().len()
                    && base.rdns()[..prefix.rdns().len()] == *prefix.rdns()
            }
            SubjectMatch::Any => true,
        }
    }
}

/// A grant: subject × resource × windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contract {
    /// Who the grant applies to.
    pub subject: SubjectMatch,
    /// Resource name the grant covers; `"*"` covers every resource.
    pub resource: String,
    /// When the grant is active (any window matching suffices).
    pub windows: Vec<Window>,
}

impl Contract {
    /// Grant `subject` access to `resource` during `windows`.
    pub fn new(subject: SubjectMatch, resource: &str, windows: Vec<Window>) -> Self {
        Contract {
            subject,
            resource: resource.to_string(),
            windows,
        }
    }

    /// An unconditional grant for one identity on one resource.
    pub fn allow_always(dn: Dn, resource: &str) -> Self {
        Contract::new(SubjectMatch::Exact(dn), resource, vec![Window::Always])
    }

    /// Whether this contract authorizes `dn` on `resource` at `now`.
    pub fn authorizes(&self, dn: &Dn, resource: &str, now: SimTime) -> bool {
        (self.resource == "*" || self.resource == resource)
            && self.subject.matches(dn)
            && self.windows.iter().any(|w| w.contains(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn at_hour(day: u64, hour: u64) -> SimTime {
        SimTime::from_secs(day * SECS_PER_DAY + hour * 3600)
    }

    #[test]
    fn paper_example_three_to_four_pm() {
        // "allow access to this resource from 3 to 4 pm to user X"
        let x = Dn::user("Grid", "ANL", "User X");
        let c = Contract::new(
            SubjectMatch::Exact(x.clone()),
            "hot-cluster",
            vec![Window::daily_hours(15, 16)],
        );
        assert!(c.authorizes(&x, "hot-cluster", at_hour(0, 15)));
        assert!(c.authorizes(&x, "hot-cluster", at_hour(5, 15))); // recurs daily
        assert!(!c.authorizes(&x, "hot-cluster", at_hour(0, 14)));
        assert!(!c.authorizes(&x, "hot-cluster", at_hour(0, 16)));
        // Different user, different resource: no.
        let y = Dn::user("Grid", "ANL", "User Y");
        assert!(!c.authorizes(&y, "hot-cluster", at_hour(0, 15)));
        assert!(!c.authorizes(&x, "other", at_hour(0, 15)));
    }

    #[test]
    fn absolute_window() {
        let dn = Dn::user("Grid", "ANL", "A");
        let c = Contract::new(
            SubjectMatch::Exact(dn.clone()),
            "res",
            vec![Window::Absolute {
                from: SimTime::from_secs(100),
                until: SimTime::from_secs(200),
            }],
        );
        assert!(!c.authorizes(&dn, "res", SimTime::from_secs(99)));
        assert!(c.authorizes(&dn, "res", SimTime::from_secs(100)));
        assert!(c.authorizes(&dn, "res", SimTime::from_secs(199)));
        assert!(!c.authorizes(&dn, "res", SimTime::from_secs(200)));
    }

    #[test]
    fn daily_window_wrapping_midnight() {
        let w = Window::Daily {
            from_sec: 22 * 3600,
            until_sec: 2 * 3600,
        };
        assert!(w.contains(at_hour(0, 23)));
        assert!(w.contains(at_hour(1, 1)));
        assert!(!w.contains(at_hour(0, 12)));
    }

    #[test]
    fn prefix_match_covers_organization() {
        let c = Contract::new(
            SubjectMatch::Prefix(
                Dn::from_rdns(vec![
                    ("O".to_string(), "Grid".to_string()),
                    ("OU".to_string(), "ANL".to_string()),
                ])
                .unwrap(),
            ),
            "*",
            vec![Window::Always],
        );
        assert!(c.authorizes(&Dn::user("Grid", "ANL", "Anyone"), "any-res", SimTime::ZERO));
        assert!(!c.authorizes(
            &Dn::user("Grid", "ISI", "Outsider"),
            "any-res",
            SimTime::ZERO
        ));
    }

    #[test]
    fn proxy_authorized_via_base_identity() {
        let x = Dn::user("Grid", "ANL", "User X");
        let proxy = x.child("CN", "proxy");
        let c = Contract::allow_always(x, "res");
        assert!(c.authorizes(&proxy, "res", SimTime::ZERO));
    }

    #[test]
    fn any_subject_wildcard_resource() {
        let c = Contract::new(SubjectMatch::Any, "*", vec![Window::Always]);
        assert!(c.authorizes(
            &Dn::user("Whatever", "X", "Y"),
            "anything",
            SimTime::from_secs(1)
        ));
    }

    #[test]
    fn multiple_windows_any_suffices() {
        let dn = Dn::user("Grid", "ANL", "B");
        let c = Contract::new(
            SubjectMatch::Exact(dn.clone()),
            "res",
            vec![Window::daily_hours(9, 10), Window::daily_hours(15, 16)],
        );
        assert!(c.authorizes(&dn, "res", at_hour(0, 9)));
        assert!(c.authorizes(&dn, "res", at_hour(0, 15)));
        assert!(!c.authorizes(&dn, "res", at_hour(0, 12)));
    }

    #[test]
    fn empty_windows_never_authorize() {
        let dn = Dn::user("Grid", "ANL", "C");
        let c = Contract::new(SubjectMatch::Exact(dn.clone()), "res", vec![]);
        assert!(!c.authorizes(&dn, "res", SimTime::ZERO));
    }

    #[test]
    fn window_boundary_semantics() {
        // Daily windows are [from, until): 15:00:00 in, 16:00:00 out.
        let w = Window::daily_hours(15, 16);
        assert!(w.contains(SimTime::from_secs(15 * 3600)));
        assert!(!w.contains(SimTime::from_secs(16 * 3600)));
        assert!(w.contains(SimTime::from_secs(16 * 3600).minus(Duration::from_secs(1))));
    }
}
