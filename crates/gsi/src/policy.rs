//! The authorizer: gridmap + contracts.
//!
//! The gatekeeper's decision pipeline, per §2 and §5.3 of the paper:
//! authenticate (chain validation, done by [`crate::handshake`]), then
//! authorize — first map the grid identity to a local account through the
//! gridmap, then check any configured contracts for the requested
//! resource.

use crate::contract::Contract;
use crate::dn::Dn;
use crate::gridmap::GridMap;
use infogram_sim::SimTime;
use parking_lot::RwLock;

/// Why authorization failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    /// The DN has no gridmap entry.
    NotMapped {
        /// The unmapped DN.
        dn: String,
    },
    /// Gridmap maps the DN, but no contract covers the resource at this
    /// time.
    NoContract {
        /// The denied DN.
        dn: String,
        /// The resource that was requested.
        resource: String,
    },
}

impl std::fmt::Display for AuthzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthzError::NotMapped { dn } => write!(f, "no gridmap entry for {dn}"),
            AuthzError::NoContract { dn, resource } => {
                write!(f, "no active contract lets {dn} use {resource}")
            }
        }
    }
}

impl std::error::Error for AuthzError {}

/// A successful authorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthzDecision {
    /// The authenticated grid identity (base identity, proxies resolved).
    pub grid_identity: Dn,
    /// The local account the request runs as.
    pub local_account: String,
}

/// Combined gridmap + contract authorization policy.
///
/// With `require_contracts = false` (the GRAM 1.1.x behaviour), a gridmap
/// entry alone suffices. With `true`, the paper's §5.3 extension applies:
/// some contract must also cover the (subject, resource, time) triple.
#[derive(Debug)]
pub struct Authorizer {
    gridmap: RwLock<GridMap>,
    contracts: RwLock<Vec<Contract>>,
    require_contracts: bool,
}

impl Authorizer {
    /// Gridmap-only policy (classic GRAM).
    pub fn gridmap_only(gridmap: GridMap) -> Self {
        Authorizer {
            gridmap: RwLock::new(gridmap),
            contracts: RwLock::new(Vec::new()),
            require_contracts: false,
        }
    }

    /// Gridmap + mandatory contracts (the InfoGram extension).
    pub fn with_contracts(gridmap: GridMap, contracts: Vec<Contract>) -> Self {
        Authorizer {
            gridmap: RwLock::new(gridmap),
            contracts: RwLock::new(contracts),
            require_contracts: true,
        }
    }

    /// Add a contract at runtime.
    pub fn add_contract(&self, contract: Contract) {
        self.contracts.write().push(contract);
    }

    /// Replace the gridmap (simulating a `grid-mapfile` reload).
    pub fn reload_gridmap(&self, gridmap: GridMap) {
        *self.gridmap.write() = gridmap;
    }

    /// Authorize `dn` to use `resource` at `now`.
    pub fn authorize(
        &self,
        dn: &Dn,
        resource: &str,
        now: SimTime,
    ) -> Result<AuthzDecision, AuthzError> {
        let base = dn.base_identity();
        let account = self
            .gridmap
            .read()
            .lookup(&base)
            .map(|s| s.to_string())
            .ok_or_else(|| AuthzError::NotMapped {
                dn: base.to_string(),
            })?;
        if self.require_contracts {
            let ok = self
                .contracts
                .read()
                .iter()
                .any(|c| c.authorizes(&base, resource, now));
            if !ok {
                return Err(AuthzError::NoContract {
                    dn: base.to_string(),
                    resource: resource.to_string(),
                });
            }
        }
        Ok(AuthzDecision {
            grid_identity: base,
            local_account: account,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{SubjectMatch, Window};

    fn gridmap() -> GridMap {
        let mut m = GridMap::new();
        m.add(Dn::user("Grid", "ANL", "Gregor"), &["gregor"]);
        m.add(Dn::user("Grid", "ANL", "Jarek"), &["gawor", "globus"]);
        m
    }

    #[test]
    fn gridmap_only_policy() {
        let a = Authorizer::gridmap_only(gridmap());
        let d = a
            .authorize(&Dn::user("Grid", "ANL", "Gregor"), "any", SimTime::ZERO)
            .unwrap();
        assert_eq!(d.local_account, "gregor");
        assert_eq!(d.grid_identity, Dn::user("Grid", "ANL", "Gregor"));

        let err = a
            .authorize(&Dn::user("Grid", "ANL", "Stranger"), "any", SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, AuthzError::NotMapped { .. }));
    }

    #[test]
    fn proxies_map_to_owner_account() {
        let a = Authorizer::gridmap_only(gridmap());
        let proxy = Dn::user("Grid", "ANL", "Gregor").child("CN", "proxy");
        let d = a.authorize(&proxy, "any", SimTime::ZERO).unwrap();
        assert_eq!(d.local_account, "gregor");
    }

    #[test]
    fn contract_policy_enforces_windows() {
        let gregor = Dn::user("Grid", "ANL", "Gregor");
        let a = Authorizer::with_contracts(
            gridmap(),
            vec![Contract::new(
                SubjectMatch::Exact(gregor.clone()),
                "cluster",
                vec![Window::daily_hours(15, 16)],
            )],
        );
        let three_pm = SimTime::from_secs(15 * 3600);
        let noon = SimTime::from_secs(12 * 3600);
        assert!(a.authorize(&gregor, "cluster", three_pm).is_ok());
        assert!(matches!(
            a.authorize(&gregor, "cluster", noon),
            Err(AuthzError::NoContract { .. })
        ));
        // Mapped user, but no contract for this resource.
        assert!(matches!(
            a.authorize(&gregor, "other-resource", three_pm),
            Err(AuthzError::NoContract { .. })
        ));
        // Unmapped user fails earlier, at the gridmap.
        assert!(matches!(
            a.authorize(&Dn::user("Grid", "X", "Nobody"), "cluster", three_pm),
            Err(AuthzError::NotMapped { .. })
        ));
    }

    #[test]
    fn contracts_addable_at_runtime() {
        let gregor = Dn::user("Grid", "ANL", "Gregor");
        let a = Authorizer::with_contracts(gridmap(), vec![]);
        assert!(a.authorize(&gregor, "res", SimTime::ZERO).is_err());
        a.add_contract(Contract::allow_always(gregor.clone(), "res"));
        assert!(a.authorize(&gregor, "res", SimTime::ZERO).is_ok());
    }

    #[test]
    fn gridmap_reload() {
        let a = Authorizer::gridmap_only(GridMap::new());
        let dn = Dn::user("Grid", "ANL", "Late Addition");
        assert!(a.authorize(&dn, "r", SimTime::ZERO).is_err());
        let mut m = GridMap::new();
        m.add(dn.clone(), &["late"]);
        a.reload_gridmap(m);
        assert_eq!(
            a.authorize(&dn, "r", SimTime::ZERO).unwrap().local_account,
            "late"
        );
    }
}
