//! Streaming and batch statistics.
//!
//! The paper's `performance` xRSL tag "returns the number of seconds and the
//! standard deviation about how long it takes to obtain a particular
//! information value" (§6.6) — that is a streaming mean/stddev, implemented
//! here with Welford's algorithm. The benchmark harness additionally wants
//! percentiles, provided by [`Summary`].

use std::time::Duration;

/// Welford's online mean / variance accumulator.
///
/// Numerically stable, O(1) per observation, no sample storage — suitable
/// for the per-keyword performance catalog that updates on every cache
/// refresh.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration, in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (n-1) standard deviation (0 with fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A batch summary with percentiles, built from stored samples.
///
/// Used by the benchmark harness where we want p50/p95/p99 latency rows in
/// the printed tables.
#[derive(Debug, Clone)]
pub struct Summary {
    sorted: Vec<f64>,
    welford: Welford,
}

impl Summary {
    /// Summarize a set of samples. The input order is irrelevant.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        let mut welford = Welford::new();
        for &s in &samples {
            welford.record(s);
        }
        Summary {
            sorted: samples,
            welford,
        }
    }

    /// Summarize durations, in seconds.
    pub fn from_durations(ds: &[Duration]) -> Self {
        Self::from_samples(ds.iter().map(|d| d.as_secs_f64()).collect())
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) by nearest-rank with linear
    /// interpolation. Returns 0 for an empty summary.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_basic_moments() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((w.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        w.record(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_quantiles() {
        let s = Summary::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.median() - 50.5).abs() < 1e-12);
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((s.quantile(0.95) - 95.05).abs() < 1e-9);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::from_samples(vec![]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn summary_filters_non_finite() {
        let s = Summary::from_samples(vec![1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn summary_from_durations() {
        let s = Summary::from_durations(&[
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ]);
        assert!((s.mean() - 0.020).abs() < 1e-12);
    }
}
