//! Scalar instruments: counters, gauges, and raw-sample recorders.

use crate::stats::{Summary, Welford};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move in both directions — queue depths,
/// remaining TTL seconds, open connections.
///
/// Stored as `f64` bits in an atomic, so readers never block writers.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to the current value.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A recorder that stores raw samples (seconds) for later summarization.
///
/// Memory grows with the sample count; services on hot paths should prefer
/// [`crate::Histogram`]. The benchmark harness keeps using this because it
/// wants exact percentiles.
#[derive(Debug, Default)]
pub struct Recorder {
    samples: Mutex<Vec<f64>>,
    welford: Mutex<Welford>,
}

impl Recorder {
    /// Record one sample, in seconds.
    pub fn record(&self, secs: f64) {
        self.samples.lock().push(secs);
        self.welford.lock().record(secs);
    }

    /// Record a duration.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.welford.lock().count()
    }

    /// Streaming mean without materializing a summary.
    pub fn mean(&self) -> f64 {
        self.welford.lock().mean()
    }

    /// Snapshot all samples into a percentile summary.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(self.samples.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_concurrent_adds() {
        let g = std::sync::Arc::new(Gauge::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 8000.0);
    }

    #[test]
    fn recorder_summary_reflects_samples() {
        let r = Recorder::default();
        r.record(1.0);
        r.record_duration(Duration::from_secs(3));
        assert_eq!(r.count(), 2);
        assert!((r.mean() - 2.0).abs() < 1e-12);
        let s = r.summary();
        assert_eq!(s.count(), 2);
        assert!((s.median() - 2.0).abs() < 1e-12);
    }
}
