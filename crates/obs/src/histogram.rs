//! Fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets. Bucket `i` covers `[2^i, 2^(i+1))` microseconds,
/// so 40 buckets span 1 µs to ~6.4 days — every latency this system can
/// plausibly produce.
pub const BUCKETS: usize = 40;

/// A lock-free latency histogram with fixed logarithmic buckets.
///
/// Recording is two relaxed atomic adds; there is no allocation and no
/// locking, so it is safe to use on the per-request hot path. Quantiles
/// are estimates: the reported value is the geometric midpoint of the
/// bucket containing the requested rank, i.e. accurate to within a factor
/// of √2 — plenty for spotting which layer a latency regression lives in.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a duration: `floor(log2(µs))`, clamped to the table.
fn bucket_index(us: u64) -> usize {
    let us = us.max(1);
    ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record an observation given in seconds.
    pub fn record_secs(&self, secs: f64) {
        self.record(Duration::from_secs_f64(secs.max(0.0)));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in seconds (0 if empty).
    pub fn mean_secs(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 / 1e6
        }
    }

    /// Estimated `q`-quantile in seconds (0 if empty). The estimate is the
    /// geometric midpoint of the bucket holding the requested rank.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen > rank {
                // Geometric midpoint of [2^i, 2^(i+1)) µs.
                return (1u64 << i) as f64 * std::f64::consts::SQRT_2 / 1e6;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1e6
    }

    /// Per-bucket counts, for rendering and tests. Entry `i` is the count
    /// of observations in `[2^i, 2^(i+1))` microseconds.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, c) in out.iter_mut().zip(&self.counts) {
            *slot = c.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0); // clamped up to 1 µs
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_tracks_observations() {
        let h = Histogram::new();
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(30));
        assert_eq!(h.count(), 2);
        assert!((h.mean_secs() - 0.020).abs() < 1e-9);
    }

    #[test]
    fn quantile_lands_in_right_bucket() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(500)); // far-right outlier
        let p50 = h.quantile_secs(0.5);
        assert!((6.4e-5..1.28e-4).contains(&p50), "p50 was {p50}");
        let p100 = h.quantile_secs(1.0);
        assert!(p100 > 0.2e-3, "p100 was {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_secs(), 0.0);
        assert_eq!(h.quantile_secs(0.99), 0.0);
    }

    #[test]
    fn concurrent_records() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }
}
