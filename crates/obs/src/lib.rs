#![warn(missing_docs)]

//! Telemetry layer for the InfoGram reproduction.
//!
//! The paper's central claim (§6.6) is that one protocol should carry both
//! information queries and job execution; this crate exists so the service
//! can apply that claim to *itself*. Every InfoGram subsystem — the unified
//! dispatcher, the GRAM connection loop, the information cache, the job
//! engine and its WAL — records into a shared [`Telemetry`] handle, and the
//! `Metrics:` key information provider (in `infogram-info`) serves that
//! state back over the same xRSL `(info=...)` path as any §6.3 Table-1
//! provider. Nothing here knows about the wire protocol; this crate is the
//! bottom of the dependency stack (only `parking_lot` below it).
//!
//! The vocabulary:
//!
//! * [`Counter`] — monotonically increasing event count.
//! * [`Gauge`] — instantaneous level that can move both ways.
//! * [`Histogram`] — fixed log₂-bucket latency histogram (lock-free).
//! * [`Recorder`] — raw-sample recorder for offline percentile summaries
//!   (the benchmark harness wants exact percentiles; services should
//!   prefer [`Histogram`], which is O(1) memory).
//! * [`EventRing`] — bounded ring of recent structured [`Event`]s.
//! * [`Telemetry`] — the named, shareable bag of all of the above.
//! * [`stats`] — Welford accumulators and percentile summaries backing
//!   the paper's `performance` tag (§6.6).

pub mod events;
pub mod histogram;
pub mod metrics;
pub mod stats;
pub mod telemetry;

pub use events::{Event, EventRing};
pub use histogram::Histogram;
pub use metrics::{Counter, Gauge, Recorder};
pub use stats::{Summary, Welford};
pub use telemetry::Telemetry;

/// Backwards-compatible name: the pre-telemetry bench harness called the
/// shared handle a "metric set".
pub type MetricSet = Telemetry;
