//! Bounded ring buffer of recent structured events.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// One structured event: a job changed state, a WAL segment was synced, a
/// cache entry expired. Events carry strings rather than an enum so every
/// layer can emit them without this crate knowing the layers exist.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number, starting at 1; never reused, so a
    /// consumer can detect how many events it missed after the ring
    /// wrapped.
    pub seq: u64,
    /// Service-clock timestamp, in seconds since the service epoch.
    pub at_secs: f64,
    /// Short machine-readable category, e.g. `job.state` or `wal.sync`.
    pub kind: String,
    /// Human-readable detail, e.g. `job 7: Active -> Done`.
    pub detail: String,
}

/// A fixed-capacity ring of the most recent [`Event`]s. Old events are
/// dropped, never reallocated over; memory use is bounded by construction.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<Event>,
    next_seq: u64,
}

/// Default ring capacity when none is chosen explicitly.
pub const DEFAULT_CAPACITY: usize = 256;

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity),
                next_seq: 1,
            }),
            capacity,
        }
    }

    /// Append an event, evicting the oldest if the ring is full. Returns
    /// the event's sequence number.
    pub fn push(&self, at_secs: f64, kind: &str, detail: &str) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(Event {
            seq,
            at_secs,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
        seq
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Total number of events ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_recent_preserve_order() {
        let ring = EventRing::with_capacity(8);
        ring.push(0.5, "job.state", "job 1: Pending -> Active");
        ring.push(0.9, "job.state", "job 1: Active -> Done");
        let events = ring.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert!(events[1].detail.contains("Done"));
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let ring = EventRing::with_capacity(3);
        for i in 0..10 {
            ring.push(i as f64, "tick", &format!("event {i}"));
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 8);
        assert_eq!(events[2].seq, 10);
        assert_eq!(ring.total_pushed(), 10);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = EventRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(0.0, "a", "first");
        ring.push(0.0, "b", "second");
        assert_eq!(ring.recent().len(), 1);
        assert_eq!(ring.recent()[0].kind, "b");
    }
}
