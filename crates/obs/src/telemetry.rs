//! The shared [`Telemetry`] handle: a named bag of every instrument.

use crate::events::{Event, EventRing};
use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge, Recorder};
use crate::stats::Summary;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named, shareable set of counters, gauges, histograms, recorders, and
/// a ring of recent events.
///
/// Cloning is cheap and every clone observes the same state, so one handle
/// is created per service and threaded through the dispatcher, the
/// connection loop, the information cache, and the job engine. Looking up
/// a name that does not exist creates the instrument, so instrumentation
/// points never need registration boilerplate.
///
/// Instruments are *interned*: every lookup of the same name returns a
/// clone of the same `Arc`, so hot paths should resolve their handles
/// once (at registration/construction time) and then increment through
/// the cached `Arc` — a lock-free atomic op with no name formatting, no
/// map lookup, and no allocation per event. The info service's
/// per-keyword counters and the dispatcher's per-kind histograms both
/// work this way.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

#[derive(Debug, Default)]
struct TelemetryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    recorders: Mutex<BTreeMap<String, Arc<Recorder>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: EventRing,
}

/// How many of the newest ring events [`Telemetry::snapshot_attrs`]
/// includes, keeping a `(info=metrics)` reply readable.
const SNAPSHOT_EVENTS: usize = 8;

impl Telemetry {
    /// A fresh, empty telemetry set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get (or create) the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get (or create) the latency recorder with this name.
    pub fn recorder(&self, name: &str) -> Arc<Recorder> {
        let mut map = self.inner.recorders.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Recorder::default())),
        )
    }

    /// Get (or create) the latency histogram with this name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Append a structured event to the shared ring. `at_secs` is the
    /// service clock reading, in seconds since the service epoch.
    pub fn event(&self, at_secs: f64, kind: &str, detail: &str) -> u64 {
        self.inner.events.push(at_secs, kind, detail)
    }

    /// The retained recent events, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner.events.recent()
    }

    /// Current value of a counter (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Current value of a gauge (0 if it was never touched).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.inner
            .gauges
            .lock()
            .get(name)
            .map(|g| g.get())
            .unwrap_or(0.0)
    }

    /// Names and values of all counters, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Names of all recorders, sorted.
    pub fn recorder_names(&self) -> Vec<String> {
        self.inner.recorders.lock().keys().cloned().collect()
    }

    /// Summary of a recorder (empty summary if never touched).
    pub fn recorder_summary(&self, name: &str) -> Summary {
        self.inner
            .recorders
            .lock()
            .get(name)
            .map(|r| r.summary())
            .unwrap_or_else(|| Summary::from_samples(vec![]))
    }

    /// Flatten the whole telemetry state into `(attribute, value)` pairs,
    /// sorted by attribute name — the payload of the `Metrics:` key
    /// information provider.
    ///
    /// The attribute schema (documented in DESIGN.md):
    ///
    /// * counters and gauges appear under their own dotted names;
    /// * each histogram `h` contributes `h.count`, `h.mean_ms`,
    ///   `h.p50_ms`, `h.p95_ms`, and `h.p99_ms`;
    /// * each recorder `r` contributes `r.count` and `r.mean_ms`;
    /// * the event ring contributes `events.recorded` plus the newest
    ///   events as `event.<seq>`;
    /// * the lock-order analyzer contributes `lockdep.classes`,
    ///   `lockdep.edges`, and `lockdep.findings` (all zero when lockdep
    ///   is disabled, e.g. release builds).
    pub fn snapshot_attrs(&self) -> Vec<(String, String)> {
        let mut attrs: BTreeMap<String, String> = BTreeMap::new();
        let lockdep = parking_lot::lockdep::counts();
        attrs.insert("lockdep.classes".to_string(), lockdep.classes.to_string());
        attrs.insert("lockdep.edges".to_string(), lockdep.edges.to_string());
        attrs.insert("lockdep.findings".to_string(), lockdep.findings.to_string());
        for (name, c) in self.inner.counters.lock().iter() {
            attrs.insert(name.clone(), c.get().to_string());
        }
        for (name, g) in self.inner.gauges.lock().iter() {
            attrs.insert(name.clone(), format_f64(g.get()));
        }
        for (name, h) in self.inner.histograms.lock().iter() {
            attrs.insert(format!("{name}.count"), h.count().to_string());
            attrs.insert(format!("{name}.mean_ms"), format_ms(h.mean_secs()));
            attrs.insert(format!("{name}.p50_ms"), format_ms(h.quantile_secs(0.50)));
            attrs.insert(format!("{name}.p95_ms"), format_ms(h.quantile_secs(0.95)));
            attrs.insert(format!("{name}.p99_ms"), format_ms(h.quantile_secs(0.99)));
        }
        for (name, r) in self.inner.recorders.lock().iter() {
            attrs.insert(format!("{name}.count"), r.count().to_string());
            attrs.insert(format!("{name}.mean_ms"), format_ms(r.mean()));
        }
        attrs.insert(
            "events.recorded".to_string(),
            self.inner.events.total_pushed().to_string(),
        );
        let recent = self.inner.events.recent();
        let newest = recent.len().saturating_sub(SNAPSHOT_EVENTS);
        for ev in &recent[newest..] {
            attrs.insert(
                format!("event.{}", ev.seq),
                format!("[t={:.3}s] {}: {}", ev.at_secs, ev.kind, ev.detail),
            );
        }
        attrs.into_iter().collect()
    }
}

/// Seconds → milliseconds with fixed 3-decimal precision.
fn format_ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Gauge rendering: plain integers stay integral, fractions keep 3 places.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.counter("jobs").incr();
        t.counter("jobs").add(4);
        assert_eq!(t.counter_value("jobs"), 5);
        assert_eq!(t.counter_value("never"), 0);
    }

    #[test]
    fn handles_are_interned() {
        // Repeated lookups return the same Arc, so a handle cached at
        // registration time stays wired to the instrument every later
        // lookup (and snapshot) observes.
        let t = Telemetry::new();
        let c1 = t.counter("info.hits.Memory");
        let c2 = t.counter("info.hits.Memory");
        assert!(Arc::ptr_eq(&c1, &c2));
        let g1 = t.gauge("g");
        assert!(Arc::ptr_eq(&g1, &t.gauge("g")));
        let h1 = t.histogram("h");
        assert!(Arc::ptr_eq(&h1, &t.histogram("h")));
        let r1 = t.recorder("r");
        assert!(Arc::ptr_eq(&r1, &t.recorder("r")));
        // Increments through the cached handle are visible by name.
        c1.incr();
        assert_eq!(t.counter_value("info.hits.Memory"), 1);
    }

    #[test]
    fn counters_shared_across_clones() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.counter("x").incr();
        t2.counter("x").incr();
        assert_eq!(t.counter_value("x"), 2);
    }

    #[test]
    fn recorder_summary_reflects_samples() {
        let t = Telemetry::new();
        let r = t.recorder("lat");
        r.record(1.0);
        r.record(3.0);
        assert_eq!(r.count(), 2);
        assert!((r.mean() - 2.0).abs() < 1e-12);
        let s = t.recorder_summary("lat");
        assert_eq!(s.count(), 2);
        assert!((s.median() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let t = Telemetry::new();
        t.counter("b").incr();
        t.counter("a").add(2);
        let snap = t.counters_snapshot();
        assert_eq!(snap, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
    }

    #[test]
    fn concurrent_increments() {
        let t = Telemetry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.counter("c").incr();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.counter_value("c"), 8000);
    }

    #[test]
    fn snapshot_attrs_covers_every_instrument() {
        let t = Telemetry::new();
        t.counter("requests.info").add(3);
        t.gauge("queue.depth").set(2.0);
        t.histogram("dispatch.latency")
            .record(Duration::from_millis(5));
        t.recorder("refresh.latency").record(0.25);
        t.event(1.5, "job.state", "job 1: Pending -> Active");

        let attrs: BTreeMap<String, String> = t.snapshot_attrs().into_iter().collect();
        assert_eq!(attrs["requests.info"], "3");
        assert_eq!(attrs["queue.depth"], "2");
        assert_eq!(attrs["dispatch.latency.count"], "1");
        assert!(attrs.contains_key("dispatch.latency.p95_ms"));
        assert_eq!(attrs["refresh.latency.count"], "1");
        assert_eq!(attrs["refresh.latency.mean_ms"], "250.000");
        assert_eq!(attrs["events.recorded"], "1");
        assert!(attrs["event.1"].contains("Pending -> Active"));

        // Sorted by attribute name.
        let names: Vec<&String> = attrs.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_attrs_caps_event_spam() {
        let t = Telemetry::new();
        for i in 0..100 {
            t.event(i as f64, "tick", "spam");
        }
        let events: Vec<_> = t
            .snapshot_attrs()
            .into_iter()
            .filter(|(k, _)| k.starts_with("event."))
            .collect();
        assert_eq!(events.len(), 8);
        let total = t
            .snapshot_attrs()
            .into_iter()
            .find(|(k, _)| k == "events.recorded")
            .unwrap();
        assert_eq!(total.1, "100");
    }
}
