//! The simulated host: one machine's worth of models glued together.

use crate::cpu::CpuLoadModel;
use crate::disk::{DiskModel, MemFs};
use crate::memory::MemoryModel;
use crate::process::ProcessTable;
use infogram_sim::{Clock, SimTime, SplitMix64};
use std::sync::Arc;

/// Static description of a simulated host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// DNS-ish host name, e.g. `node07.anl.gov`.
    pub hostname: String,
    /// Number of CPUs.
    pub cpus: u32,
    /// Physical memory in bytes.
    pub memory_total: u64,
    /// Disk capacity in bytes.
    pub disk_total: u64,
    /// Operating system label reported by `uname`.
    pub os_name: String,
    /// Long-run mean CPU load the stochastic process reverts to.
    pub mean_load: f64,
    /// Master seed; every sub-model forks its own stream from it.
    pub seed: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            hostname: "node00.grid.example.org".to_string(),
            cpus: 4,
            memory_total: 4 << 30,
            disk_total: 64 << 30,
            os_name: "SimLinux 2.4.18".to_string(),
            mean_load: 1.0,
            seed: 0x1f0_6ea3,
        }
    }
}

/// One simulated machine: CPU load process, memory, disk, an in-memory
/// filesystem (with `/proc` and a populated `/home`), and a process table.
///
/// Hosts are cheap to construct, deterministic for a fixed
/// `(config.seed, clock)`, and shared via `Arc` among the services that
/// run "on" them.
#[derive(Debug)]
pub struct SimulatedHost {
    config: HostConfig,
    clock: Arc<dyn Clock>,
    boot_time: SimTime,
    /// Stochastic CPU load (see [`CpuLoadModel`]).
    pub cpu: CpuLoadModel,
    /// Memory accounting.
    pub memory: MemoryModel,
    /// Disk accounting.
    pub disk: DiskModel,
    /// In-memory filesystem.
    pub fs: MemFs,
    /// Simulated process table.
    pub processes: ProcessTable,
}

impl SimulatedHost {
    /// Build a host from a config on the given clock.
    pub fn new(config: HostConfig, clock: Arc<dyn Clock>) -> Arc<Self> {
        let mut master = SplitMix64::new(config.seed);
        let cpu_seed = master.next_u64();
        let mem_seed = master.next_u64();
        let boot_time = clock.now();
        let host = SimulatedHost {
            cpu: CpuLoadModel::new(
                clock.clone(),
                cpu_seed,
                config.mean_load,
                config.cpus as f64 * 2.0,
            ),
            memory: MemoryModel::new(clock.clone(), mem_seed, config.memory_total, 0.2),
            disk: DiskModel::new(config.disk_total, config.disk_total / 4),
            fs: MemFs::new(),
            processes: ProcessTable::new(clock.clone()),
            config,
            clock,
            boot_time,
        };
        host.populate_home();
        Arc::new(host)
    }

    /// A default host on the given clock (tests).
    pub fn default_on(clock: Arc<dyn Clock>) -> Arc<Self> {
        Self::new(HostConfig::default(), clock)
    }

    fn populate_home(&self) {
        // The Table 1 example runs `ls /home/gregor`; give it something to
        // list.
        for f in [
            "paper.tex",
            "results.dat",
            "infogram.conf",
            "jobs/run1.rsl",
            "jobs/run2.rsl",
        ] {
            self.fs.write(&format!("/home/gregor/{f}"), "");
        }
        self.fs.write("/etc/grid-security/hostcert.pem", "SIMCERT");
    }

    /// Host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Host name.
    pub fn hostname(&self) -> &str {
        &self.config.hostname
    }

    /// The clock this host lives on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Seconds since the host "booted" (clock time at construction).
    pub fn uptime_secs(&self) -> f64 {
        self.clock.now().since(self.boot_time).as_secs_f64()
    }

    /// Current UTC-ish date string derived from the simulation clock.
    ///
    /// The simulation epoch is pinned to 2002-07-24 00:00:00 UTC — the
    /// first day of HPDC-11, where the paper was presented.
    pub fn date_string(&self) -> String {
        let total_secs = self.clock.now().as_nanos() / 1_000_000_000;
        let days = total_secs / 86_400;
        let rem = total_secs % 86_400;
        let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
        // Calendar arithmetic from the fixed epoch, good for the ~years of
        // simulated time the experiments use.
        let mut year = 2002u64;
        let mut month = 7u64;
        let mut day = 24 + days;
        loop {
            let dim = days_in_month(year, month);
            if day <= dim {
                break;
            }
            day -= dim;
            month += 1;
            if month > 12 {
                month = 1;
                year += 1;
            }
        }
        format!("{year:04}-{month:02}-{day:02} {h:02}:{m:02}:{s:02} UTC")
    }
}

fn days_in_month(year: u64, month: u64) -> u64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400)) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month {month}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    #[test]
    fn host_assembles() {
        let clock = ManualClock::new();
        let h = SimulatedHost::default_on(clock.clone());
        assert_eq!(h.hostname(), "node00.grid.example.org");
        assert_eq!(h.config().cpus, 4);
        assert!(h.fs.exists("/home/gregor/paper.tex"));
        assert_eq!(h.uptime_secs(), 0.0);
        clock.advance(Duration::from_secs(30));
        assert_eq!(h.uptime_secs(), 30.0);
    }

    #[test]
    fn date_string_epoch_and_rollover() {
        let clock = ManualClock::new();
        let h = SimulatedHost::default_on(clock.clone());
        assert_eq!(h.date_string(), "2002-07-24 00:00:00 UTC");
        clock.advance(Duration::from_secs(86_400 + 3_723));
        assert_eq!(h.date_string(), "2002-07-25 01:02:03 UTC");
    }

    #[test]
    fn date_string_month_rollover() {
        let clock = ManualClock::new();
        let h = SimulatedHost::default_on(clock.clone());
        // 8 days later: July 24 + 8 = August 1.
        clock.advance(Duration::from_secs(8 * 86_400));
        assert!(h.date_string().starts_with("2002-08-01"));
    }

    #[test]
    fn hosts_with_same_seed_agree() {
        let c1 = ManualClock::new();
        let c2 = ManualClock::new();
        let h1 = SimulatedHost::default_on(c1.clone());
        let h2 = SimulatedHost::default_on(c2.clone());
        c1.advance(Duration::from_secs(60));
        c2.advance(Duration::from_secs(60));
        assert_eq!(h1.cpu.current(), h2.cpu.current());
        assert_eq!(h1.memory.used(), h2.memory.used());
    }

    #[test]
    fn leap_year_february() {
        assert_eq!(days_in_month(2004, 2), 29);
        assert_eq!(days_in_month(2002, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }
}
