//! Memory model for a simulated host.
//!
//! Tracks total/used memory. The "ambient" usage follows a slow random
//! walk (background daemons), and explicit reservations are layered on top
//! for running jobs so the execution experiments see memory pressure.

use infogram_sim::{Clock, SimTime, SplitMix64};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Simulated physical memory.
#[derive(Debug)]
pub struct MemoryModel {
    clock: Arc<dyn Clock>,
    total: u64,
    inner: Mutex<MemState>,
}

#[derive(Debug)]
struct MemState {
    rng: SplitMix64,
    advanced_to: SimTime,
    ambient: u64,
    reserved: u64,
}

/// Error returned when a reservation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were free.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl MemoryModel {
    /// A host with `total` bytes, of which roughly `ambient_fraction` is
    /// already in use by the (simulated) OS.
    pub fn new(clock: Arc<dyn Clock>, seed: u64, total: u64, ambient_fraction: f64) -> Self {
        let ambient = (total as f64 * ambient_fraction.clamp(0.0, 0.9)) as u64;
        MemoryModel {
            clock,
            total,
            inner: Mutex::new(MemState {
                rng: SplitMix64::new(seed),
                advanced_to: SimTime::ZERO,
                ambient,
                reserved: 0,
            }),
        }
    }

    fn drift(&self, st: &mut MemState) {
        let now = self.clock.now();
        let step = Duration::from_secs(5).as_nanos() as u64;
        while st.advanced_to.as_nanos() + step <= now.as_nanos() {
            // Ambient usage random-walks by up to ±0.5% of total per step.
            let delta = st.rng.normal(0.0, self.total as f64 * 0.005);
            let next = st.ambient as f64 + delta;
            let cap = self.total.saturating_sub(st.reserved) as f64 * 0.95;
            st.ambient = next.clamp(0.0, cap) as u64;
            st.advanced_to = SimTime::from_nanos(st.advanced_to.as_nanos() + step);
        }
    }

    /// Total physical bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently in use (ambient + reservations).
    pub fn used(&self) -> u64 {
        let mut st = self.inner.lock();
        self.drift(&mut st);
        (st.ambient + st.reserved).min(self.total)
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.total - self.used()
    }

    /// Reserve `bytes` for a job; fails if not available.
    pub fn reserve(&self, bytes: u64) -> Result<(), OutOfMemory> {
        let mut st = self.inner.lock();
        self.drift(&mut st);
        let used = (st.ambient + st.reserved).min(self.total);
        let available = self.total - used;
        if bytes > available {
            return Err(OutOfMemory {
                requested: bytes,
                available,
            });
        }
        st.reserved += bytes;
        Ok(())
    }

    /// Release a previous reservation (saturating; releasing more than
    /// reserved clamps to zero rather than corrupting state).
    pub fn release(&self, bytes: u64) {
        let mut st = self.inner.lock();
        st.reserved = st.reserved.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;

    const GIB: u64 = 1 << 30;

    fn model() -> (Arc<ManualClock>, MemoryModel) {
        let clock = ManualClock::new();
        let m = MemoryModel::new(clock.clone(), 7, 4 * GIB, 0.25);
        (clock, m)
    }

    #[test]
    fn accounting_consistent() {
        let (_c, m) = model();
        assert_eq!(m.total(), 4 * GIB);
        assert_eq!(m.used() + m.free(), m.total());
    }

    #[test]
    fn reserve_and_release() {
        let (_c, m) = model();
        let before = m.used();
        m.reserve(GIB).unwrap();
        assert!(m.used() >= before + GIB);
        m.release(GIB);
        assert!(m.used() < before + GIB);
    }

    #[test]
    fn over_reserve_fails() {
        let (_c, m) = model();
        let err = m.reserve(100 * GIB).unwrap_err();
        assert_eq!(err.requested, 100 * GIB);
        assert!(err.available < 4 * GIB);
    }

    #[test]
    fn ambient_drifts_over_time() {
        let (clock, m) = model();
        let a = m.used();
        clock.advance(Duration::from_secs(600));
        let b = m.used();
        assert_ne!(a, b, "ambient usage should drift");
        assert!(b <= m.total());
    }

    #[test]
    fn release_saturates() {
        let (_c, m) = model();
        m.release(10 * GIB); // nothing reserved; must not underflow
        assert!(m.used() <= m.total());
    }
}
