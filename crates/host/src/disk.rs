//! Disk model and a tiny in-memory filesystem.
//!
//! Two pieces: a capacity model (for the `sysinfo -disk` style providers)
//! and [`MemFs`], a path → contents map used for the paper's `ls
//! /home/gregor` information provider (Table 1), for the `/proc` files, and
//! for sandbox filesystem-policy tests.

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Simulated disk capacity accounting.
#[derive(Debug)]
pub struct DiskModel {
    total: u64,
    used: RwLock<u64>,
}

impl DiskModel {
    /// A disk with `total` bytes, `used` of which are occupied.
    pub fn new(total: u64, used: u64) -> Self {
        DiskModel {
            total,
            used: RwLock::new(used.min(total)),
        }
    }

    /// Total capacity in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes in use.
    pub fn used(&self) -> u64 {
        *self.used.read()
    }

    /// Bytes free.
    pub fn free(&self) -> u64 {
        self.total - *self.used.read()
    }

    /// Consume `bytes`; returns false (and changes nothing) if full.
    pub fn consume(&self, bytes: u64) -> bool {
        let mut used = self.used.write();
        if *used + bytes > self.total {
            return false;
        }
        *used += bytes;
        true
    }

    /// Free `bytes` (saturating).
    pub fn reclaim(&self, bytes: u64) {
        let mut used = self.used.write();
        *used = used.saturating_sub(bytes);
    }
}

/// A minimal in-memory filesystem: absolute slash-separated paths mapping
/// to byte contents. Directories are implicit (any proper path prefix).
#[derive(Debug, Default)]
pub struct MemFs {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    fn normalize(path: &str) -> String {
        let mut p = String::from("/");
        for seg in path.split('/').filter(|s| !s.is_empty() && *s != ".") {
            if !p.ends_with('/') {
                p.push('/');
            }
            p.push_str(seg);
        }
        p
    }

    /// Create or replace a file.
    pub fn write(&self, path: &str, contents: impl Into<Vec<u8>>) {
        self.files
            .write()
            .insert(Self::normalize(path), contents.into());
    }

    /// Read a file's contents, if present.
    pub fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.files.read().get(&Self::normalize(path)).cloned()
    }

    /// Read a file as UTF-8 text, if present and valid.
    pub fn read_text(&self, path: &str) -> Option<String> {
        self.read(path).and_then(|b| String::from_utf8(b).ok())
    }

    /// Whether the exact file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(&Self::normalize(path))
    }

    /// Remove a file; returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.write().remove(&Self::normalize(path)).is_some()
    }

    /// The immediate children of a directory: file names and first-level
    /// subdirectory names, sorted and deduplicated. Mirrors `ls`.
    pub fn list(&self, dir: &str) -> Vec<String> {
        let dir = {
            let d = Self::normalize(dir);
            if d == "/" {
                d
            } else {
                format!("{d}/")
            }
        };
        let files = self.files.read();
        let mut out: Vec<String> = files
            .keys()
            .filter_map(|k| k.strip_prefix(&dir))
            .filter(|rest| !rest.is_empty())
            .map(|rest| match rest.split_once('/') {
                Some((first, _)) => first.to_string(),
                None => rest.to_string(),
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of files in the filesystem.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_accounting() {
        let d = DiskModel::new(1000, 300);
        assert_eq!(d.free(), 700);
        assert!(d.consume(700));
        assert!(!d.consume(1));
        assert_eq!(d.free(), 0);
        d.reclaim(500);
        assert_eq!(d.used(), 500);
        d.reclaim(10_000);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn fs_roundtrip_and_normalization() {
        let fs = MemFs::new();
        fs.write("/home//gregor/./file.txt", "hello");
        assert_eq!(fs.read_text("/home/gregor/file.txt").unwrap(), "hello");
        assert!(fs.exists("home/gregor/file.txt"));
        assert!(!fs.exists("/home/gregor/nope"));
    }

    #[test]
    fn fs_list_directory() {
        let fs = MemFs::new();
        fs.write("/home/gregor/a.txt", "");
        fs.write("/home/gregor/b.txt", "");
        fs.write("/home/gregor/sub/c.txt", "");
        fs.write("/home/other/d.txt", "");
        assert_eq!(
            fs.list("/home/gregor"),
            vec!["a.txt".to_string(), "b.txt".to_string(), "sub".to_string()]
        );
        assert_eq!(
            fs.list("/home"),
            vec!["gregor".to_string(), "other".to_string()]
        );
        assert!(fs.list("/empty").is_empty());
    }

    #[test]
    fn fs_list_root() {
        let fs = MemFs::new();
        fs.write("/proc/loadavg", "x");
        fs.write("/etc/passwd", "y");
        assert_eq!(fs.list("/"), vec!["etc".to_string(), "proc".to_string()]);
    }

    #[test]
    fn fs_remove() {
        let fs = MemFs::new();
        fs.write("/a", "1");
        assert!(fs.remove("/a"));
        assert!(!fs.remove("/a"));
        assert_eq!(fs.file_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_path() -> impl Strategy<Value = String> {
        prop::collection::vec("[a-z][a-z.]{0,5}", 1..4)
            .prop_map(|segs| format!("/{}", segs.join("/")))
    }

    proptest! {
        /// Write-then-read returns the written bytes, however the path is
        /// decorated with redundant slashes and `.` segments.
        #[test]
        fn write_read_roundtrip(
            path in arb_path(),
            contents in prop::collection::vec(any::<u8>(), 0..64),
            decoration in "(/|/\\./){0,3}",
        ) {
            let fs = MemFs::new();
            fs.write(&path, contents.clone());
            // Decorate: double slashes / dot segments prepended.
            let decorated = format!("{decoration}{path}");
            prop_assert_eq!(fs.read(&decorated), Some(contents));
        }

        /// Every written file is reachable through `list` from the root.
        #[test]
        fn listed_from_root(paths in prop::collection::vec(arb_path(), 1..8)) {
            let fs = MemFs::new();
            for p in &paths {
                fs.write(p, "x");
            }
            for p in &paths {
                // Walk down the tree from "/" following the path segments.
                let mut dir = "/".to_string();
                for seg in p.trim_start_matches('/').split('/') {
                    let entries = fs.list(&dir);
                    prop_assert!(
                        entries.iter().any(|e| e == seg),
                        "{seg} missing from {dir} (entries {entries:?})"
                    );
                    if !dir.ends_with('/') {
                        dir.push('/');
                    }
                    dir.push_str(seg);
                }
                prop_assert!(fs.exists(p));
            }
        }
    }
}
