//! Process table.
//!
//! The J-GRAM fork backend "executes" jobs by entering them into this
//! table with a service time; a process finishes when its host clock passes
//! its deadline. Cancellation and failure injection are supported so the
//! execution-service experiments can exercise the full job lifecycle.

use infogram_sim::{Clock, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Process identifier on a simulated host.
pub type Pid = u64;

/// Where a process is in its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Still running.
    Running,
    /// Finished (see [`ExitStatus`]).
    Exited,
}

/// How a process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Normal exit with a code (0 = success).
    Code(i32),
    /// Killed by a (simulated) signal.
    Signaled(i32),
}

impl ExitStatus {
    /// Whether this status is a clean, zero exit.
    pub fn success(&self) -> bool {
        matches!(self, ExitStatus::Code(0))
    }
}

#[derive(Debug, Clone)]
struct ProcEntry {
    started_at: SimTime,
    /// When the process will finish of its own accord.
    deadline: SimTime,
    /// Exit code it will report at the deadline.
    natural_exit: i32,
    /// Set if the process was killed or force-failed before its deadline.
    forced: Option<ExitStatus>,
    command: String,
}

/// A table of simulated processes on one host.
#[derive(Debug)]
pub struct ProcessTable {
    clock: Arc<dyn Clock>,
    inner: Mutex<TableState>,
}

#[derive(Debug, Default)]
struct TableState {
    next_pid: Pid,
    procs: BTreeMap<Pid, ProcEntry>,
}

impl ProcessTable {
    /// An empty process table on the given clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        ProcessTable {
            clock,
            inner: Mutex::new(TableState {
                next_pid: 1,
                procs: BTreeMap::new(),
            }),
        }
    }

    /// Spawn a process that will run for `runtime` and then exit with
    /// `exit_code`. Returns its pid.
    pub fn spawn(&self, command: &str, runtime: Duration, exit_code: i32) -> Pid {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        let pid = st.next_pid;
        st.next_pid += 1;
        st.procs.insert(
            pid,
            ProcEntry {
                started_at: now,
                deadline: now.plus(runtime),
                natural_exit: exit_code,
                forced: None,
                command: command.to_string(),
            },
        );
        pid
    }

    /// Current state of a process; `None` for unknown pids.
    pub fn state(&self, pid: Pid) -> Option<ProcState> {
        let now = self.clock.now();
        let st = self.inner.lock();
        st.procs.get(&pid).map(|p| {
            if p.forced.is_some() || now >= p.deadline {
                ProcState::Exited
            } else {
                ProcState::Running
            }
        })
    }

    /// Exit status, if the process has exited; `None` while running or for
    /// unknown pids.
    pub fn exit_status(&self, pid: Pid) -> Option<ExitStatus> {
        let now = self.clock.now();
        let st = self.inner.lock();
        st.procs.get(&pid).and_then(|p| {
            if let Some(forced) = p.forced {
                Some(forced)
            } else if now >= p.deadline {
                Some(ExitStatus::Code(p.natural_exit))
            } else {
                None
            }
        })
    }

    /// Deliver a kill signal; returns false if the process had already
    /// exited or does not exist.
    pub fn kill(&self, pid: Pid, signal: i32) -> bool {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        match st.procs.get_mut(&pid) {
            Some(p) if p.forced.is_none() && now < p.deadline => {
                p.forced = Some(ExitStatus::Signaled(signal));
                true
            }
            _ => false,
        }
    }

    /// Force a process to fail immediately with the given exit code
    /// (failure injection for the restart experiments).
    pub fn inject_failure(&self, pid: Pid, exit_code: i32) -> bool {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        match st.procs.get_mut(&pid) {
            Some(p) if p.forced.is_none() && now < p.deadline => {
                p.forced = Some(ExitStatus::Code(exit_code));
                true
            }
            _ => false,
        }
    }

    /// Time the process has been (or was) alive.
    pub fn runtime(&self, pid: Pid) -> Option<Duration> {
        let now = self.clock.now();
        let st = self.inner.lock();
        st.procs
            .get(&pid)
            .map(|p| now.min(p.deadline).since(p.started_at))
    }

    /// The command line a pid was spawned with.
    pub fn command(&self, pid: Pid) -> Option<String> {
        self.inner.lock().procs.get(&pid).map(|p| p.command.clone())
    }

    /// Number of currently running processes.
    pub fn running_count(&self) -> usize {
        let now = self.clock.now();
        let st = self.inner.lock();
        st.procs
            .values()
            .filter(|p| p.forced.is_none() && now < p.deadline)
            .count()
    }

    /// Drop records of exited processes (the moral equivalent of reaping).
    pub fn reap(&self) -> usize {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        let before = st.procs.len();
        st.procs
            .retain(|_, p| p.forced.is_none() && now < p.deadline);
        before - st.procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;

    fn table() -> (Arc<ManualClock>, ProcessTable) {
        let clock = ManualClock::new();
        (clock.clone(), ProcessTable::new(clock))
    }

    #[test]
    fn process_runs_then_exits() {
        let (clock, t) = table();
        let pid = t.spawn("sleep 10", Duration::from_secs(10), 0);
        assert_eq!(t.state(pid), Some(ProcState::Running));
        assert_eq!(t.exit_status(pid), None);
        clock.advance(Duration::from_secs(10));
        assert_eq!(t.state(pid), Some(ProcState::Exited));
        assert_eq!(t.exit_status(pid), Some(ExitStatus::Code(0)));
        assert!(t.exit_status(pid).unwrap().success());
    }

    #[test]
    fn nonzero_exit_code() {
        let (clock, t) = table();
        let pid = t.spawn("false", Duration::from_secs(1), 2);
        clock.advance(Duration::from_secs(1));
        assert_eq!(t.exit_status(pid), Some(ExitStatus::Code(2)));
        assert!(!t.exit_status(pid).unwrap().success());
    }

    #[test]
    fn kill_running_process() {
        let (clock, t) = table();
        let pid = t.spawn("spin", Duration::from_secs(100), 0);
        assert!(t.kill(pid, 9));
        assert_eq!(t.state(pid), Some(ProcState::Exited));
        assert_eq!(t.exit_status(pid), Some(ExitStatus::Signaled(9)));
        // Killing twice fails.
        assert!(!t.kill(pid, 9));
        // Killing after natural exit fails.
        let pid2 = t.spawn("quick", Duration::from_secs(1), 0);
        clock.advance(Duration::from_secs(2));
        assert!(!t.kill(pid2, 15));
    }

    #[test]
    fn failure_injection() {
        let (_clock, t) = table();
        let pid = t.spawn("job", Duration::from_secs(100), 0);
        assert!(t.inject_failure(pid, 42));
        assert_eq!(t.exit_status(pid), Some(ExitStatus::Code(42)));
    }

    #[test]
    fn unknown_pid() {
        let (_clock, t) = table();
        assert_eq!(t.state(999), None);
        assert_eq!(t.exit_status(999), None);
        assert!(!t.kill(999, 9));
    }

    #[test]
    fn runtime_capped_at_deadline() {
        let (clock, t) = table();
        let pid = t.spawn("x", Duration::from_secs(5), 0);
        clock.advance(Duration::from_secs(3));
        assert_eq!(t.runtime(pid), Some(Duration::from_secs(3)));
        clock.advance(Duration::from_secs(100));
        assert_eq!(t.runtime(pid), Some(Duration::from_secs(5)));
    }

    #[test]
    fn running_count_and_reap() {
        let (clock, t) = table();
        let _a = t.spawn("a", Duration::from_secs(1), 0);
        let _b = t.spawn("b", Duration::from_secs(10), 0);
        assert_eq!(t.running_count(), 2);
        clock.advance(Duration::from_secs(2));
        assert_eq!(t.running_count(), 1);
        assert_eq!(t.reap(), 1);
        assert_eq!(t.running_count(), 1);
    }

    #[test]
    fn pids_unique_and_command_recorded() {
        let (_clock, t) = table();
        let a = t.spawn("cmd-a", Duration::from_secs(1), 0);
        let b = t.spawn("cmd-b", Duration::from_secs(1), 0);
        assert_ne!(a, b);
        assert_eq!(t.command(a).unwrap(), "cmd-a");
        assert_eq!(t.command(b).unwrap(), "cmd-b");
    }
}
