#![warn(missing_docs)]

//! Simulated compute host.
//!
//! The InfoGram paper's information providers shell out to real system
//! commands — `date -u`, `/sbin/sysinfo.exe -mem`, `/usr/local/bin/
//! cpuload.exe`, `ls` (Table 1) — and its J-GRAM backends submit jobs to
//! real local schedulers (fork, PBS, LSF, Condor). This crate replaces that
//! 2002 machine room with a deterministic model:
//!
//! * [`SimulatedHost`] — one machine: hostname, CPU count, a stochastic
//!   CPU-load process, memory/disk models, a `/proc`-like read-only
//!   filesystem, and a process table.
//! * [`commands`] — a registry mapping command lines to handlers with
//!   configurable execution-cost distributions; the built-ins mirror
//!   Table 1 of the paper.
//! * [`queue`] — batch-scheduler models (FIFO, fair-share, and a
//!   Condor-style matchmaker) used by the J-GRAM backends.
//!
//! Everything is clock- and seed-parameterized, so the caching and
//! degradation experiments can replay identical "system" behaviour.

pub mod commands;
pub mod cpu;
pub mod disk;
pub mod machine;
pub mod memory;
pub mod process;
pub mod procfs;
pub mod queue;

pub use commands::{CommandError, CommandOutput, CommandRegistry, CostModel};
pub use cpu::CpuLoadModel;
pub use machine::{HostConfig, SimulatedHost};
pub use process::{ExitStatus, ProcState, ProcessTable};
pub use queue::{BatchJob, BatchQueue, FairShareQueue, FifoQueue, JobOutcome, Matchmaker};
