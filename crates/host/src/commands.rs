//! System command registry.
//!
//! Table 1 of the paper maps information keywords to *commands* —
//! `date -u`, `/sbin/sysinfo.exe -mem`, `/usr/local/bin/cpuload.exe`,
//! `ls /home/gregor` — executed "via the Java runtime exec" (§6.2 case
//! (a)). This module is that runtime: a registry of command handlers over a
//! [`SimulatedHost`], each with a configurable execution-cost model.
//!
//! The cost is what makes the caching experiments real: executing a
//! command *takes time* (charged to the host clock), so serving from the
//! TTL cache measurably beats re-executing (§5.1).

use crate::machine::SimulatedHost;
use crate::procfs;
use infogram_sim::fault::{FaultPlan, Injection};
use infogram_sim::{ManualClock, SplitMix64};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Result of a command execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Captured standard output.
    pub stdout: String,
    /// Exit code (0 = success).
    pub exit_code: i32,
    /// The simulated execution cost that was charged.
    pub cost: Duration,
}

/// Why a command could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// No handler registered for this executable name.
    UnknownCommand(String),
    /// The command line was empty.
    EmptyCommandLine,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            CommandError::EmptyCommandLine => write!(f, "empty command line"),
        }
    }
}

impl std::error::Error for CommandError {}

/// Distribution of a command's execution time.
#[derive(Debug, Clone)]
pub enum CostModel {
    /// Always exactly this long.
    Fixed(Duration),
    /// Normal, truncated at zero.
    Normal {
        /// Mean cost.
        mean: Duration,
        /// Cost standard deviation.
        std_dev: Duration,
    },
}

impl CostModel {
    fn sample(&self, rng: &mut SplitMix64) -> Duration {
        match self {
            CostModel::Fixed(d) => *d,
            CostModel::Normal { mean, std_dev } => {
                let x = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                Duration::from_secs_f64(x.max(0.0))
            }
        }
    }
}

/// How execution cost is charged to the world.
#[derive(Debug, Clone)]
pub enum ChargeMode {
    /// Really sleep on the host clock (system-clock services).
    Sleep,
    /// Advance a manual clock by the cost (deterministic experiments).
    Advance(Arc<ManualClock>),
    /// Record the cost in the output but charge nothing (pure unit tests).
    None,
}

type Handler = Arc<dyn Fn(&SimulatedHost, &[&str]) -> (String, i32) + Send + Sync + 'static>;

struct CommandSpec {
    handler: Handler,
    cost: CostModel,
}

impl std::fmt::Debug for CommandSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandSpec")
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// Registry of executable commands on one host.
#[derive(Debug)]
pub struct CommandRegistry {
    host: Arc<SimulatedHost>,
    specs: RwLock<HashMap<String, CommandSpec>>,
    rng: Mutex<SplitMix64>,
    charge: ChargeMode,
    faults: RwLock<Option<Arc<FaultPlan>>>,
}

impl CommandRegistry {
    /// A registry with all built-in commands, charging costs per `charge`.
    pub fn new(host: Arc<SimulatedHost>, charge: ChargeMode) -> Arc<Self> {
        let seed = host.config().seed ^ 0xc0ffee;
        let reg = Arc::new(CommandRegistry {
            host,
            specs: RwLock::new(HashMap::new()),
            rng: Mutex::new(SplitMix64::new(seed)),
            charge,
            faults: RwLock::new(None),
        });
        reg.install_builtins();
        reg
    }

    /// Register (or replace) a command by executable basename.
    pub fn register(
        &self,
        name: &str,
        cost: CostModel,
        handler: impl Fn(&SimulatedHost, &[&str]) -> (String, i32) + Send + Sync + 'static,
    ) {
        self.specs.write().insert(
            name.to_string(),
            CommandSpec {
                handler: Arc::new(handler),
                cost,
            },
        );
    }

    /// Override only the cost model of an existing command.
    pub fn set_cost(&self, name: &str, cost: CostModel) -> bool {
        match self.specs.write().get_mut(name) {
            Some(spec) => {
                spec.cost = cost;
                true
            }
            None => false,
        }
    }

    /// Whether a command with this basename exists.
    pub fn contains(&self, name: &str) -> bool {
        self.specs.read().contains_key(name)
    }

    /// Attach (or replace) the fault plan consulted by [`execute`].
    ///
    /// Faults apply to *interactive* executions only; [`plan`] (job
    /// planning) is unaffected, so the injection surface is exactly the
    /// information-provider path. Pass-through of the plan's decisions:
    /// `Fail` charges the normal cost then exits nonzero, `Hang(d)` and
    /// `SlowBy(d)` charge `d` through the same [`ChargeMode`] as
    /// execution cost, so deadline budgets observe the stall under both
    /// clocks.
    ///
    /// [`execute`]: CommandRegistry::execute
    /// [`plan`]: CommandRegistry::plan
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.faults.write() = Some(plan);
    }

    /// Remove any attached fault plan.
    pub fn clear_fault_plan(&self) {
        *self.faults.write() = None;
    }

    /// Charge a duration to the world per this registry's charge mode.
    fn charge(&self, d: Duration) {
        match &self.charge {
            ChargeMode::Sleep => self.host.clock().sleep(d),
            ChargeMode::Advance(manual) => manual.advance(d),
            ChargeMode::None => {}
        }
    }

    /// Execute a full command line, e.g. `/sbin/sysinfo.exe -mem`.
    ///
    /// The executable is resolved by its basename, so the machine-specific
    /// paths of Table 1 all resolve to the simulated implementations.
    pub fn execute(&self, command_line: &str) -> Result<CommandOutput, CommandError> {
        let tokens: Vec<&str> = command_line.split_whitespace().collect();
        let exe = tokens.first().ok_or(CommandError::EmptyCommandLine)?;
        let basename = exe.rsplit('/').next().unwrap_or(exe);
        // Strip a `.exe` suffix, as in `/sbin/sysinfo.exe`.
        let basename = basename.strip_suffix(".exe").unwrap_or(basename);

        let (handler, cost_model) = {
            let specs = self.specs.read();
            let spec = specs
                .get(basename)
                .ok_or_else(|| CommandError::UnknownCommand(basename.to_string()))?;
            (Arc::clone(&spec.handler), spec.cost.clone())
        };
        let cost = cost_model.sample(&mut self.rng.lock());
        let injection = {
            let faults = self.faults.read();
            match faults.as_ref() {
                Some(plan) => plan.decide(basename, self.host.clock().now()),
                None => Injection::Healthy,
            }
        };
        match injection {
            Injection::Healthy => {
                self.charge(cost);
                let (stdout, exit_code) = handler(&self.host, &tokens[1..]);
                Ok(CommandOutput {
                    stdout,
                    exit_code,
                    cost,
                })
            }
            Injection::SlowBy(extra) => {
                self.charge(cost + extra);
                let (stdout, exit_code) = handler(&self.host, &tokens[1..]);
                Ok(CommandOutput {
                    stdout,
                    exit_code,
                    cost: cost + extra,
                })
            }
            Injection::Fail { exit_code, detail } => {
                self.charge(cost);
                Ok(CommandOutput {
                    stdout: format!("fault: {detail}\n"),
                    exit_code,
                    cost,
                })
            }
            Injection::Hang(stall) => {
                // The command stalls for `stall` (charged to the clock so
                // deadline budgets see it), then is reaped as failed.
                self.charge(cost + stall);
                Ok(CommandOutput {
                    stdout: "fault: hung, reaped by watchdog\n".to_string(),
                    exit_code: infogram_sim::fault::EXIT_HUNG,
                    cost: cost + stall,
                })
            }
        }
    }

    /// Plan a command execution without charging its cost: compute the
    /// output, exit code, and the sampled cost. The fork backend in
    /// `infogram-exec` uses this to enter a process into the process
    /// table whose *deadline* models the cost, instead of blocking the
    /// submitting thread.
    ///
    /// If the planned output contains a `__runtime_ms` pair (emitted by
    /// `simwork`/`sleep`), that value overrides the sampled cost and is
    /// stripped from the output.
    pub fn plan(&self, command_line: &str) -> Result<CommandOutput, CommandError> {
        let tokens: Vec<&str> = command_line.split_whitespace().collect();
        let exe = tokens.first().ok_or(CommandError::EmptyCommandLine)?;
        let basename = exe.rsplit('/').next().unwrap_or(exe);
        let basename = basename.strip_suffix(".exe").unwrap_or(basename);
        let (handler, cost_model) = {
            let specs = self.specs.read();
            let spec = specs
                .get(basename)
                .ok_or_else(|| CommandError::UnknownCommand(basename.to_string()))?;
            (Arc::clone(&spec.handler), spec.cost.clone())
        };
        let mut cost = cost_model.sample(&mut self.rng.lock());
        let (stdout, exit_code) = handler(&self.host, &tokens[1..]);
        let mut kept = String::with_capacity(stdout.len());
        for line in stdout.lines() {
            if let Some(ms) = line
                .strip_prefix("__runtime_ms:")
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                cost = Duration::from_millis(ms);
            } else {
                kept.push_str(line);
                kept.push('\n');
            }
        }
        Ok(CommandOutput {
            stdout: kept,
            exit_code,
            cost,
        })
    }

    /// The host this registry executes against.
    pub fn host(&self) -> &Arc<SimulatedHost> {
        &self.host
    }

    fn install_builtins(self: &Arc<Self>) {
        let fast = CostModel::Normal {
            mean: Duration::from_millis(5),
            std_dev: Duration::from_millis(1),
        };
        let medium = CostModel::Normal {
            mean: Duration::from_millis(20),
            std_dev: Duration::from_millis(4),
        };

        self.register("date", fast.clone(), |host, _args| {
            (format!("value: {}\n", host.date_string()), 0)
        });

        self.register("hostname", fast.clone(), |host, _args| {
            (format!("value: {}\n", host.hostname()), 0)
        });

        self.register("uname", fast.clone(), |host, args| {
            let os = &host.config().os_name;
            let out = if args.contains(&"-a") {
                format!("value: {os} {} simd 1 SMP\n", host.hostname())
            } else {
                format!("value: {os}\n")
            };
            (out, 0)
        });

        self.register("uptime", fast.clone(), |host, _args| {
            let (l1, l5, l15) = host.cpu.load_averages();
            (
                format!(
                    "seconds: {:.0}\nload1: {l1:.2}\nload5: {l5:.2}\nload15: {l15:.2}\n",
                    host.uptime_secs()
                ),
                0,
            )
        });

        // `/sbin/sysinfo.exe -mem | -cpu | -disk` from Table 1.
        self.register("sysinfo", medium.clone(), |host, args| {
            match args.first().copied() {
                Some("-mem") => (
                    format!(
                        "total: {}\nused: {}\nfree: {}\n",
                        host.memory.total(),
                        host.memory.used(),
                        host.memory.free()
                    ),
                    0,
                ),
                Some("-cpu") => (
                    format!(
                        "count: {}\nmodel: SimCPU 1000MHz\nmhz: 1000\n",
                        host.config().cpus
                    ),
                    0,
                ),
                Some("-disk") => (
                    format!(
                        "total: {}\nused: {}\nfree: {}\n",
                        host.disk.total(),
                        host.disk.used(),
                        host.disk.free()
                    ),
                    0,
                ),
                other => (
                    format!("error: unknown flag {:?}\n", other.unwrap_or("")),
                    1,
                ),
            }
        });

        // `/usr/local/bin/cpuload.exe` from Table 1: the hot, frequently
        // polled value of §5.1.
        self.register("cpuload", medium.clone(), |host, _args| {
            let (l1, l5, l15) = host.cpu.load_averages();
            (
                format!(
                    "load: {:.4}\nload1: {l1:.4}\nload5: {l5:.4}\nload15: {l15:.4}\n",
                    host.cpu.current()
                ),
                0,
            )
        });

        self.register("ls", fast.clone(), |host, args| {
            let dir = args
                .iter()
                .find(|a| !a.starts_with('-'))
                .copied()
                .unwrap_or("/");
            let entries = host.fs.list(dir);
            if entries.is_empty() && !host.fs.exists(dir) {
                (format!("ls: cannot access {dir}\n"), 2)
            } else {
                let mut out = String::new();
                for (i, e) in entries.iter().enumerate() {
                    out.push_str(&format!("entry{i}: {e}\n"));
                }
                (out, 0)
            }
        });

        self.register("cat", fast.clone(), |host, args| match args.first() {
            Some(path) => match host.fs.read_text(path) {
                Some(text) => (text, 0),
                None => (format!("cat: {path}: no such file\n"), 1),
            },
            None => (String::new(), 1),
        });

        self.register("df", medium, |host, _args| {
            (
                format!(
                    "total: {}\nused: {}\navailable: {}\n",
                    host.disk.total(),
                    host.disk.used(),
                    host.disk.free()
                ),
                0,
            )
        });

        // `proc` reads a /proc file after refreshing it from the models.
        self.register("proc", fast, |host, args| match args.first() {
            Some(path) => {
                procfs::sync_procfs(host);
                match host.fs.read_text(path) {
                    Some(text) => (text, 0),
                    None => (format!("proc: {path}: no such file\n"), 1),
                }
            }
            None => (String::new(), 1),
        });

        // `true` / `false` for exit-code tests.
        self.register("true", CostModel::Fixed(Duration::ZERO), |_, _| {
            (String::new(), 0)
        });
        self.register("false", CostModel::Fixed(Duration::ZERO), |_, _| {
            (String::new(), 1)
        });

        // `simwork <runtime_ms> [exit_code]` — a controllable batch job
        // body for the execution-service experiments. The `__runtime_ms`
        // pair instructs `plan` to use the requested runtime as the
        // process duration.
        self.register("simwork", CostModel::Fixed(Duration::ZERO), |_, args| {
            let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0);
            let exit: i32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0);
            (
                format!("__runtime_ms: {ms}\nstatus: simulated work complete\n"),
                exit,
            )
        });

        // `sleep <seconds>` — classic job body.
        self.register("sleep", CostModel::Fixed(Duration::ZERO), |_, args| {
            let secs: f64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0.0);
            (format!("__runtime_ms: {}\n", (secs * 1000.0) as u64), 0)
        });
    }
}

/// Parse `key: value` command output lines into ordered pairs, the
/// convention all built-in commands follow and the information providers
/// consume.
pub fn parse_kv_output(stdout: &str) -> Vec<(String, String)> {
    stdout
        .lines()
        .filter_map(|line| {
            let (k, v) = line.split_once(':')?;
            let k = k.trim();
            if k.is_empty() {
                return None;
            }
            Some((k.to_string(), v.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::{Clock, ManualClock};

    fn registry() -> (Arc<ManualClock>, Arc<CommandRegistry>) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
        (clock, reg)
    }

    #[test]
    fn date_command() {
        let (_c, reg) = registry();
        let out = reg.execute("date -u").unwrap();
        assert_eq!(out.exit_code, 0);
        assert!(out.stdout.contains("2002-07-24"));
    }

    #[test]
    fn table1_paths_resolve_by_basename() {
        let (_c, reg) = registry();
        assert_eq!(reg.execute("/sbin/sysinfo.exe -mem").unwrap().exit_code, 0);
        assert_eq!(reg.execute("/sbin/sysinfo.exe -cpu").unwrap().exit_code, 0);
        assert_eq!(
            reg.execute("/usr/local/bin/cpuload.exe").unwrap().exit_code,
            0
        );
        assert_eq!(reg.execute("/bin/ls /home/gregor").unwrap().exit_code, 0);
    }

    #[test]
    fn ls_lists_home_gregor() {
        let (_c, reg) = registry();
        let out = reg.execute("/bin/ls /home/gregor").unwrap();
        assert!(out.stdout.contains("paper.tex"));
        assert!(out.stdout.contains("jobs"));
    }

    #[test]
    fn ls_missing_dir_fails() {
        let (_c, reg) = registry();
        let out = reg.execute("ls /no/such/dir").unwrap();
        assert_eq!(out.exit_code, 2);
    }

    #[test]
    fn unknown_command() {
        let (_c, reg) = registry();
        assert_eq!(
            reg.execute("/usr/bin/frobnicate"),
            Err(CommandError::UnknownCommand("frobnicate".to_string()))
        );
        assert_eq!(reg.execute("   "), Err(CommandError::EmptyCommandLine));
    }

    #[test]
    fn cost_charged_to_manual_clock() {
        let (clock, reg) = registry();
        let before = clock.now();
        let out = reg.execute("cpuload").unwrap();
        assert!(out.cost > Duration::ZERO);
        assert_eq!(clock.now().since(before), out.cost);
    }

    #[test]
    fn fixed_cost_override() {
        let (clock, reg) = registry();
        assert!(reg.set_cost("cpuload", CostModel::Fixed(Duration::from_millis(123))));
        let before = clock.now();
        reg.execute("cpuload").unwrap();
        assert_eq!(clock.now().since(before), Duration::from_millis(123));
        assert!(!reg.set_cost("nope", CostModel::Fixed(Duration::ZERO)));
    }

    #[test]
    fn custom_command_registration() {
        let (_c, reg) = registry();
        reg.register("greet", CostModel::Fixed(Duration::ZERO), |_, args| {
            (format!("hello: {}\n", args.join(" ")), 0)
        });
        let out = reg.execute("/opt/bin/greet grid world").unwrap();
        assert_eq!(out.stdout, "hello: grid world\n");
    }

    #[test]
    fn kv_parsing() {
        let kvs = parse_kv_output("a: 1\nb: two words \n\nnot-a-pair\n: missing\n");
        assert_eq!(
            kvs,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "two words".to_string()),
            ]
        );
    }

    #[test]
    fn sysinfo_mem_parses() {
        let (_c, reg) = registry();
        let out = reg.execute("sysinfo -mem").unwrap();
        let kvs = parse_kv_output(&out.stdout);
        let total: u64 = kvs
            .iter()
            .find(|(k, _)| k == "total")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert_eq!(total, reg.host().memory.total());
    }

    #[test]
    fn proc_command_reads_live_loadavg() {
        let (clock, reg) = registry();
        clock.advance(Duration::from_secs(30));
        let out = reg.execute("proc /proc/loadavg").unwrap();
        assert_eq!(out.exit_code, 0);
        assert!(crate::procfs::parse_loadavg_load1(&out.stdout).is_some());
    }

    #[test]
    fn true_false_exit_codes() {
        let (_c, reg) = registry();
        assert_eq!(reg.execute("true").unwrap().exit_code, 0);
        assert_eq!(reg.execute("false").unwrap().exit_code, 1);
    }

    #[test]
    fn plan_does_not_charge_cost() {
        let (clock, reg) = registry();
        let before = clock.now();
        let out = reg.plan("cpuload").unwrap();
        assert_eq!(clock.now(), before, "plan must not advance the clock");
        assert!(out.cost > Duration::ZERO);
        assert!(out.stdout.contains("load:"));
    }

    #[test]
    fn simwork_runtime_and_exit() {
        let (_c, reg) = registry();
        let out = reg.plan("/bin/simwork 1500 3").unwrap();
        assert_eq!(out.cost, Duration::from_millis(1500));
        assert_eq!(out.exit_code, 3);
        assert!(
            !out.stdout.contains("__runtime_ms"),
            "runtime directive stripped from output"
        );
        assert!(out.stdout.contains("simulated work complete"));
    }

    #[test]
    fn fault_plan_shapes_execution() {
        use infogram_sim::fault::{Fault, FaultPlan, EXIT_HUNG, EXIT_INJECTED};
        let (clock, reg) = registry();
        reg.set_cost("cpuload", CostModel::Fixed(Duration::from_millis(10)));
        let plan = FaultPlan::new();
        plan.script(
            "cpuload",
            vec![
                Fault::Fail,
                Fault::Hang(Duration::from_millis(200)),
                Fault::SlowBy(Duration::from_millis(40)),
            ],
        );
        reg.set_fault_plan(plan);

        let out = reg.execute("cpuload").unwrap();
        assert_eq!(out.exit_code, EXIT_INJECTED);
        assert!(out.stdout.contains("injected failure"));

        // The hang charges its stall to the clock before failing.
        let before = clock.now();
        let out = reg.execute("cpuload").unwrap();
        assert_eq!(out.exit_code, EXIT_HUNG);
        assert_eq!(clock.now().since(before), Duration::from_millis(210));

        // SlowBy succeeds with the extra delay charged.
        let before = clock.now();
        let out = reg.execute("cpuload").unwrap();
        assert_eq!(out.exit_code, 0);
        assert!(out.stdout.contains("load:"));
        assert_eq!(clock.now().since(before), Duration::from_millis(50));

        // Script exhausted: healthy again.
        assert_eq!(reg.execute("cpuload").unwrap().exit_code, 0);
        reg.clear_fault_plan();
    }

    #[test]
    fn sleep_runtime() {
        let (_c, reg) = registry();
        let out = reg.plan("sleep 2.5").unwrap();
        assert_eq!(out.cost, Duration::from_millis(2500));
        assert_eq!(out.exit_code, 0);
    }
}
