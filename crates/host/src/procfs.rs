//! `/proc`-style renderings of the host models.
//!
//! The paper names "the Linux proc file system" as "a good example for an
//! information provider" (§6.2, case (c): "a read function from a file
//! that is used by an information provider"). These functions render the
//! live model state in the familiar `/proc` text formats so the
//! file-reading provider in `infogram-info` has real files to parse.

use crate::machine::SimulatedHost;

/// Render `/proc/loadavg`: `load1 load5 load15 running/total last_pid`.
pub fn render_loadavg(host: &SimulatedHost) -> String {
    let (l1, l5, l15) = host.cpu.load_averages();
    let running = host.processes.running_count();
    format!(
        "{l1:.2} {l5:.2} {l15:.2} {running}/{total} 0\n",
        total = running + 12 // a dozen simulated daemons
    )
}

/// Render a `/proc/meminfo` subset (kB units, like the kernel).
pub fn render_meminfo(host: &SimulatedHost) -> String {
    let total_kb = host.memory.total() / 1024;
    let free_kb = host.memory.free() / 1024;
    let used_kb = host.memory.used() / 1024;
    format!("MemTotal: {total_kb} kB\nMemFree: {free_kb} kB\nMemUsed: {used_kb} kB\n")
}

/// Render `/proc/uptime`: seconds-up and (fake) idle seconds.
pub fn render_uptime(host: &SimulatedHost) -> String {
    let up = host.uptime_secs();
    let idle = up * (1.0 - host.cpu.current() / host.config().cpus as f64).max(0.0);
    format!("{up:.2} {idle:.2}\n")
}

/// Render a `/proc/cpuinfo` subset.
pub fn render_cpuinfo(host: &SimulatedHost) -> String {
    let mut out = String::new();
    for i in 0..host.config().cpus {
        out.push_str(&format!(
            "processor\t: {i}\nmodel name\t: SimCPU 1000MHz\nbogomips\t: 1993.93\n\n"
        ));
    }
    out
}

/// Write the current renderings into the host's in-memory filesystem under
/// `/proc`, so file-based providers can `read()` them.
pub fn sync_procfs(host: &SimulatedHost) {
    host.fs.write("/proc/loadavg", render_loadavg(host));
    host.fs.write("/proc/meminfo", render_meminfo(host));
    host.fs.write("/proc/uptime", render_uptime(host));
    host.fs.write("/proc/cpuinfo", render_cpuinfo(host));
}

/// Parse the first field of a rendered `/proc/loadavg` back into a float.
pub fn parse_loadavg_load1(text: &str) -> Option<f64> {
    text.split_whitespace().next()?.parse().ok()
}

/// Parse `MemFree` (bytes) out of a rendered `/proc/meminfo`.
pub fn parse_meminfo_free_bytes(text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemFree:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    #[test]
    fn loadavg_roundtrip() {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        clock.advance(Duration::from_secs(90));
        let text = render_loadavg(&host);
        let parsed = parse_loadavg_load1(&text).unwrap();
        let (l1, _, _) = host.cpu.load_averages();
        assert!((parsed - l1).abs() < 0.01, "parsed {parsed} vs model {l1}");
    }

    #[test]
    fn meminfo_roundtrip() {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock);
        let text = render_meminfo(&host);
        let free = parse_meminfo_free_bytes(&text).unwrap();
        // kB truncation loses < 1 kB.
        assert!(free.abs_diff(host.memory.free()) < 1024);
    }

    #[test]
    fn sync_writes_proc_files() {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock);
        sync_procfs(&host);
        for f in ["loadavg", "meminfo", "uptime", "cpuinfo"] {
            assert!(host.fs.exists(&format!("/proc/{f}")), "missing /proc/{f}");
        }
        let cpuinfo = host.fs.read_text("/proc/cpuinfo").unwrap();
        assert_eq!(cpuinfo.matches("processor").count(), 4);
    }

    #[test]
    fn uptime_grows() {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        clock.advance(Duration::from_secs(100));
        let text = render_uptime(&host);
        let up: f64 = text.split_whitespace().next().unwrap().parse().unwrap();
        assert!((up - 100.0).abs() < 0.01);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_loadavg_load1(""), None);
        assert_eq!(parse_loadavg_load1("not-a-number x"), None);
        assert_eq!(parse_meminfo_free_bytes("nothing here"), None);
    }
}
