//! Batch-scheduler models.
//!
//! GRAM's backend tier "is easily portable to various scheduling systems
//! ... PBS, LSF, Condor, and Unix process fork" (§2 of the paper). The
//! J-GRAM backends in `infogram-exec` delegate to these queue models:
//!
//! * [`FifoQueue`] — a PBS/LSF-style space-shared queue with a fixed slot
//!   count and first-come-first-served dispatch.
//! * [`FairShareQueue`] — the same engine but dispatch ordered by least
//!   accumulated per-user usage.
//! * [`Matchmaker`] — a Condor-style pool: jobs carry attribute
//!   requirements, machines advertise attributes, and a job runs on the
//!   first free machine that satisfies every requirement.
//!
//! All three are event-driven on the host clock: scheduling decisions are
//! replayed lazily up to "now" whenever the queue is observed, so they work
//! identically under real and virtual time.

use crate::process::ExitStatus;
use infogram_sim::{Clock, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a job inside one queue.
pub type QueueJobId = u64;

/// A job as the batch layer sees it.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable name.
    pub name: String,
    /// Submitting (local) user.
    pub user: String,
    /// Service time once started.
    pub runtime: Duration,
    /// CPUs consumed (used for fair-share accounting).
    pub cpus: u32,
    /// Exit code the job will report.
    pub exit_code: i32,
    /// Attribute requirements for matchmaking (ignored by FIFO queues).
    pub requirements: Vec<(String, String)>,
}

impl BatchJob {
    /// A simple single-CPU job.
    pub fn simple(name: &str, user: &str, runtime: Duration) -> Self {
        BatchJob {
            name: name.to_string(),
            user: user.to_string(),
            runtime,
            cpus: 1,
            exit_code: 0,
            requirements: Vec::new(),
        }
    }

    /// Add a matchmaking requirement.
    pub fn requiring(mut self, key: &str, value: &str) -> Self {
        self.requirements.push((key.to_string(), value.to_string()));
        self
    }
}

/// Observable state of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Waiting for a slot.
    Queued,
    /// Started at the contained time, still running.
    Running {
        /// When the job began executing.
        started_at: SimTime,
    },
    /// Finished.
    Completed {
        /// When the job began executing.
        started_at: SimTime,
        /// When the job finished.
        finished_at: SimTime,
        /// How it ended.
        status: ExitStatus,
    },
    /// Cancelled before completion.
    Cancelled,
}

/// Common interface of every batch-scheduler model.
pub trait BatchQueue: Send + Sync + std::fmt::Debug {
    /// Scheduler family name ("fifo", "fairshare", "matchmaker").
    fn scheduler_name(&self) -> &str;
    /// Enqueue a job; returns its queue-local id.
    fn submit(&self, job: BatchJob) -> QueueJobId;
    /// Current outcome; `None` for unknown ids.
    fn poll(&self, id: QueueJobId) -> Option<JobOutcome>;
    /// Cancel a queued or running job; false if already terminal/unknown.
    fn cancel(&self, id: QueueJobId) -> bool;
    /// Jobs waiting for a slot right now.
    fn queued_depth(&self) -> usize;
    /// Jobs running right now.
    fn running_count(&self) -> usize;
}

/// Dispatch-order policy for the slot-based engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Fifo,
    FairShare,
}

#[derive(Debug, Clone)]
struct Pending {
    id: QueueJobId,
    job: BatchJob,
    submitted_at: SimTime,
}

#[derive(Debug, Clone)]
struct Running {
    id: QueueJobId,
    started_at: SimTime,
    ends_at: SimTime,
    exit_code: i32,
}

#[derive(Debug)]
struct EngineState {
    next_id: QueueJobId,
    cursor: SimTime,
    pending: Vec<Pending>,
    running: Vec<Running>,
    finished: BTreeMap<QueueJobId, JobOutcome>,
    jobs: BTreeMap<QueueJobId, BatchJob>,
    /// Accumulated cpu-seconds per user (fair share).
    usage: BTreeMap<String, f64>,
}

/// Slot-based queue engine shared by [`FifoQueue`] and [`FairShareQueue`].
#[derive(Debug)]
struct Engine {
    clock: Arc<dyn Clock>,
    slots: usize,
    policy: Policy,
    state: Mutex<EngineState>,
}

impl Engine {
    fn new(clock: Arc<dyn Clock>, slots: usize, policy: Policy) -> Self {
        assert!(slots > 0, "queue needs at least one slot");
        Engine {
            clock,
            slots,
            policy,
            state: Mutex::new(EngineState {
                next_id: 1,
                cursor: SimTime::ZERO,
                pending: Vec::new(),
                running: Vec::new(),
                finished: BTreeMap::new(),
                jobs: BTreeMap::new(),
                usage: BTreeMap::new(),
            }),
        }
    }

    /// Replay scheduling decisions up to `now`.
    fn sweep(&self, st: &mut EngineState, now: SimTime) {
        loop {
            // Fill free slots at the cursor.
            while st.running.len() < self.slots && !st.pending.is_empty() {
                let idx = self.pick(st);
                let p = st.pending.remove(idx);
                let start = st.cursor.max(p.submitted_at);
                let run = p.job.runtime;
                *st.usage.entry(p.job.user.clone()).or_insert(0.0) +=
                    run.as_secs_f64() * p.job.cpus as f64;
                st.running.push(Running {
                    id: p.id,
                    started_at: start,
                    ends_at: start.plus(run),
                    exit_code: p.job.exit_code,
                });
            }
            // Advance to the next completion that is in the past.
            let next = st
                .running
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.ends_at)
                .map(|(i, r)| (i, r.ends_at));
            match next {
                Some((i, end)) if end <= now => {
                    let r = st.running.swap_remove(i);
                    st.cursor = end;
                    st.finished.insert(
                        r.id,
                        JobOutcome::Completed {
                            started_at: r.started_at,
                            finished_at: r.ends_at,
                            status: ExitStatus::Code(r.exit_code),
                        },
                    );
                }
                _ => {
                    st.cursor = now;
                    break;
                }
            }
        }
    }

    /// Index into `pending` of the next job to dispatch.
    fn pick(&self, st: &EngineState) -> usize {
        match self.policy {
            Policy::Fifo => 0,
            Policy::FairShare => {
                let mut best = 0usize;
                let mut best_usage = f64::INFINITY;
                for (i, p) in st.pending.iter().enumerate() {
                    let u = st.usage.get(&p.job.user).copied().unwrap_or(0.0);
                    if u < best_usage {
                        best_usage = u;
                        best = i;
                    }
                }
                best
            }
        }
    }

    fn submit(&self, job: BatchJob) -> QueueJobId {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(id, job.clone());
        st.pending.push(Pending {
            id,
            job,
            submitted_at: now,
        });
        self.sweep(&mut st, now);
        id
    }

    fn poll(&self, id: QueueJobId) -> Option<JobOutcome> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        if let Some(out) = st.finished.get(&id) {
            return Some(*out);
        }
        if let Some(r) = st.running.iter().find(|r| r.id == id) {
            return Some(JobOutcome::Running {
                started_at: r.started_at,
            });
        }
        if st.pending.iter().any(|p| p.id == id) {
            return Some(JobOutcome::Queued);
        }
        None
    }

    fn cancel(&self, id: QueueJobId) -> bool {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        if let Some(i) = st.pending.iter().position(|p| p.id == id) {
            st.pending.remove(i);
            st.finished.insert(id, JobOutcome::Cancelled);
            return true;
        }
        if let Some(i) = st.running.iter().position(|r| r.id == id) {
            st.running.swap_remove(i);
            st.finished.insert(id, JobOutcome::Cancelled);
            return true;
        }
        false
    }

    fn queued_depth(&self) -> usize {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        st.pending.len()
    }

    fn running_count(&self) -> usize {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        st.running.len()
    }
}

/// PBS/LSF-flavoured first-come-first-served space-shared queue.
#[derive(Debug)]
pub struct FifoQueue {
    engine: Engine,
}

impl FifoQueue {
    /// A FIFO queue with `slots` simultaneous jobs.
    pub fn new(clock: Arc<dyn Clock>, slots: usize) -> Self {
        FifoQueue {
            engine: Engine::new(clock, slots, Policy::Fifo),
        }
    }
}

impl BatchQueue for FifoQueue {
    fn scheduler_name(&self) -> &str {
        "fifo"
    }
    fn submit(&self, job: BatchJob) -> QueueJobId {
        self.engine.submit(job)
    }
    fn poll(&self, id: QueueJobId) -> Option<JobOutcome> {
        self.engine.poll(id)
    }
    fn cancel(&self, id: QueueJobId) -> bool {
        self.engine.cancel(id)
    }
    fn queued_depth(&self) -> usize {
        self.engine.queued_depth()
    }
    fn running_count(&self) -> usize {
        self.engine.running_count()
    }
}

/// Fair-share queue: dispatch order favours users with the least
/// accumulated cpu-seconds.
#[derive(Debug)]
pub struct FairShareQueue {
    engine: Engine,
}

impl FairShareQueue {
    /// A fair-share queue with `slots` simultaneous jobs.
    pub fn new(clock: Arc<dyn Clock>, slots: usize) -> Self {
        FairShareQueue {
            engine: Engine::new(clock, slots, Policy::FairShare),
        }
    }

    /// Accumulated cpu-seconds charged to a user so far.
    pub fn usage_of(&self, user: &str) -> f64 {
        self.engine
            .state
            .lock()
            .usage
            .get(user)
            .copied()
            .unwrap_or(0.0)
    }
}

impl BatchQueue for FairShareQueue {
    fn scheduler_name(&self) -> &str {
        "fairshare"
    }
    fn submit(&self, job: BatchJob) -> QueueJobId {
        self.engine.submit(job)
    }
    fn poll(&self, id: QueueJobId) -> Option<JobOutcome> {
        self.engine.poll(id)
    }
    fn cancel(&self, id: QueueJobId) -> bool {
        self.engine.cancel(id)
    }
    fn queued_depth(&self) -> usize {
        self.engine.queued_depth()
    }
    fn running_count(&self) -> usize {
        self.engine.running_count()
    }
}

/// One advertised machine in a matchmaking pool.
#[derive(Debug, Clone)]
pub struct MachineAd {
    /// Machine name.
    pub name: String,
    /// Advertised attributes, e.g. `arch=x86`, `os=linux`, `mem=2048`.
    pub attributes: BTreeMap<String, String>,
}

impl MachineAd {
    /// Build an ad from `(key, value)` pairs.
    pub fn new(name: &str, attrs: &[(&str, &str)]) -> Self {
        MachineAd {
            name: name.to_string(),
            attributes: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Whether this machine satisfies every requirement of a job.
    pub fn matches(&self, job: &BatchJob) -> bool {
        job.requirements
            .iter()
            .all(|(k, v)| self.attributes.get(k) == Some(v))
    }
}

#[derive(Debug)]
struct MatchState {
    next_id: QueueJobId,
    cursor: SimTime,
    pending: Vec<Pending>,
    /// Per-machine: currently running job, if any.
    running: Vec<Option<Running>>,
    finished: BTreeMap<QueueJobId, JobOutcome>,
}

/// Condor-style matchmaker: a pool of machines with attributes; each job's
/// requirements must all be satisfied by its machine.
#[derive(Debug)]
pub struct Matchmaker {
    clock: Arc<dyn Clock>,
    machines: Vec<MachineAd>,
    state: Mutex<MatchState>,
}

impl Matchmaker {
    /// A pool over the given machine ads.
    pub fn new(clock: Arc<dyn Clock>, machines: Vec<MachineAd>) -> Self {
        assert!(!machines.is_empty(), "empty pool");
        let n = machines.len();
        Matchmaker {
            clock,
            machines,
            state: Mutex::new(MatchState {
                next_id: 1,
                cursor: SimTime::ZERO,
                pending: Vec::new(),
                running: vec![None; n],
                finished: BTreeMap::new(),
            }),
        }
    }

    /// Whether any machine in the pool could ever run this job.
    pub fn can_match(&self, job: &BatchJob) -> bool {
        self.machines.iter().any(|m| m.matches(job))
    }

    fn sweep(&self, st: &mut MatchState, now: SimTime) {
        loop {
            // Match pending jobs (in submit order) to free machines at the
            // cursor.
            let mut matched_any = true;
            while matched_any {
                matched_any = false;
                let mut i = 0;
                while i < st.pending.len() {
                    let slot = (0..self.machines.len()).find(|&m| {
                        st.running[m].is_none() && self.machines[m].matches(&st.pending[i].job)
                    });
                    if let Some(m) = slot {
                        let p = st.pending.remove(i);
                        let start = st.cursor.max(p.submitted_at);
                        st.running[m] = Some(Running {
                            id: p.id,
                            started_at: start,
                            ends_at: start.plus(p.job.runtime),
                            exit_code: p.job.exit_code,
                        });
                        matched_any = true;
                    } else {
                        i += 1;
                    }
                }
            }
            // Earliest completion in the past?
            let next = st
                .running
                .iter()
                .enumerate()
                .filter_map(|(m, r)| r.as_ref().map(|r| (m, r.ends_at)))
                .min_by_key(|(_, e)| *e);
            match next {
                Some((m, end)) if end <= now => {
                    // lint:allow(unwrap) — index m came from filter_map over the Some entries above
                    let r = st.running[m].take().expect("running job present");
                    st.cursor = end;
                    st.finished.insert(
                        r.id,
                        JobOutcome::Completed {
                            started_at: r.started_at,
                            finished_at: r.ends_at,
                            status: ExitStatus::Code(r.exit_code),
                        },
                    );
                }
                _ => {
                    st.cursor = now;
                    break;
                }
            }
        }
    }
}

impl BatchQueue for Matchmaker {
    fn scheduler_name(&self) -> &str {
        "matchmaker"
    }

    fn submit(&self, job: BatchJob) -> QueueJobId {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        let id = st.next_id;
        st.next_id += 1;
        st.pending.push(Pending {
            id,
            job,
            submitted_at: now,
        });
        self.sweep(&mut st, now);
        id
    }

    fn poll(&self, id: QueueJobId) -> Option<JobOutcome> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        if let Some(out) = st.finished.get(&id) {
            return Some(*out);
        }
        if let Some(r) = st.running.iter().flatten().find(|r| r.id == id) {
            return Some(JobOutcome::Running {
                started_at: r.started_at,
            });
        }
        if st.pending.iter().any(|p| p.id == id) {
            return Some(JobOutcome::Queued);
        }
        None
    }

    fn cancel(&self, id: QueueJobId) -> bool {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        if let Some(i) = st.pending.iter().position(|p| p.id == id) {
            st.pending.remove(i);
            st.finished.insert(id, JobOutcome::Cancelled);
            return true;
        }
        for slot in st.running.iter_mut() {
            if slot.as_ref().map(|r| r.id) == Some(id) {
                *slot = None;
                st.finished.insert(id, JobOutcome::Cancelled);
                return true;
            }
        }
        false
    }

    fn queued_depth(&self) -> usize {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        st.pending.len()
    }

    fn running_count(&self) -> usize {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.sweep(&mut st, now);
        st.running.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn fifo_runs_in_order_with_slots() {
        let clock = ManualClock::new();
        let q = FifoQueue::new(clock.clone(), 1);
        let a = q.submit(BatchJob::simple("a", "u1", secs(10)));
        let b = q.submit(BatchJob::simple("b", "u1", secs(10)));
        assert_eq!(
            q.poll(a),
            Some(JobOutcome::Running {
                started_at: SimTime::ZERO
            })
        );
        assert_eq!(q.poll(b), Some(JobOutcome::Queued));
        assert_eq!(q.queued_depth(), 1);
        clock.advance(secs(10));
        // a completes at t=10, b starts at t=10.
        assert!(
            matches!(q.poll(a), Some(JobOutcome::Completed { finished_at, .. }) if finished_at == SimTime::from_secs(10))
        );
        assert!(
            matches!(q.poll(b), Some(JobOutcome::Running { started_at }) if started_at == SimTime::from_secs(10))
        );
        clock.advance(secs(10));
        assert!(matches!(q.poll(b), Some(JobOutcome::Completed { .. })));
    }

    #[test]
    fn fifo_parallel_slots() {
        let clock = ManualClock::new();
        let q = FifoQueue::new(clock.clone(), 3);
        let ids: Vec<_> = (0..3)
            .map(|i| q.submit(BatchJob::simple(&format!("j{i}"), "u", secs(5))))
            .collect();
        assert_eq!(q.running_count(), 3);
        clock.advance(secs(5));
        for id in ids {
            assert!(matches!(q.poll(id), Some(JobOutcome::Completed { .. })));
        }
    }

    #[test]
    fn fifo_cancel_pending_and_running() {
        let clock = ManualClock::new();
        let q = FifoQueue::new(clock.clone(), 1);
        let a = q.submit(BatchJob::simple("a", "u", secs(100)));
        let b = q.submit(BatchJob::simple("b", "u", secs(100)));
        assert!(q.cancel(b));
        assert_eq!(q.poll(b), Some(JobOutcome::Cancelled));
        assert!(q.cancel(a));
        assert_eq!(q.poll(a), Some(JobOutcome::Cancelled));
        assert!(!q.cancel(a), "second cancel fails");
        assert_eq!(q.poll(999), None);
    }

    #[test]
    fn completion_time_exact_under_backlog() {
        let clock = ManualClock::new();
        let q = FifoQueue::new(clock.clone(), 1);
        let ids: Vec<_> = (0..4)
            .map(|i| q.submit(BatchJob::simple(&format!("{i}"), "u", secs(3))))
            .collect();
        clock.advance(secs(60));
        for (i, id) in ids.iter().enumerate() {
            match q.poll(*id) {
                Some(JobOutcome::Completed {
                    started_at,
                    finished_at,
                    status,
                }) => {
                    assert_eq!(started_at, SimTime::from_secs(3 * i as u64));
                    assert_eq!(finished_at, SimTime::from_secs(3 * (i as u64 + 1)));
                    assert!(status.success());
                }
                other => panic!("job {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn fairshare_prefers_light_user() {
        let clock = ManualClock::new();
        let q = FairShareQueue::new(clock.clone(), 1);
        // Heavy user fills the machine, then queues more; light user's job
        // arrives last but should jump the heavy user's backlog.
        let _h1 = q.submit(BatchJob::simple("h1", "heavy", secs(10)));
        let h2 = q.submit(BatchJob::simple("h2", "heavy", secs(10)));
        let l1 = q.submit(BatchJob::simple("l1", "light", secs(10)));
        clock.advance(secs(10)); // h1 done; next dispatch decision
        assert!(
            matches!(q.poll(l1), Some(JobOutcome::Running { .. })),
            "light user should run before heavy's second job"
        );
        assert_eq!(q.poll(h2), Some(JobOutcome::Queued));
        // Each user has now dispatched one 10s single-cpu job.
        assert!((q.usage_of("heavy") - 10.0).abs() < 1e-9);
        assert!((q.usage_of("light") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fairshare_usage_accumulates() {
        let clock = ManualClock::new();
        let q = FairShareQueue::new(clock.clone(), 2);
        q.submit(BatchJob::simple("a", "alice", secs(30)));
        assert!((q.usage_of("alice") - 30.0).abs() < 1e-9);
        assert_eq!(q.usage_of("bob"), 0.0);
    }

    #[test]
    fn matchmaker_respects_requirements() {
        let clock = ManualClock::new();
        let pool = Matchmaker::new(
            clock.clone(),
            vec![
                MachineAd::new("m1", &[("arch", "x86"), ("os", "linux")]),
                MachineAd::new("m2", &[("arch", "sparc"), ("os", "solaris")]),
            ],
        );
        let linux_job = BatchJob::simple("lj", "u", secs(5)).requiring("os", "linux");
        let solaris_job = BatchJob::simple("sj", "u", secs(5)).requiring("os", "solaris");
        let impossible = BatchJob::simple("ij", "u", secs(5)).requiring("os", "plan9");
        assert!(pool.can_match(&linux_job));
        assert!(!pool.can_match(&impossible));

        let a = pool.submit(linux_job);
        let b = pool.submit(solaris_job);
        let c = pool.submit(impossible);
        assert!(matches!(pool.poll(a), Some(JobOutcome::Running { .. })));
        assert!(matches!(pool.poll(b), Some(JobOutcome::Running { .. })));
        assert_eq!(pool.poll(c), Some(JobOutcome::Queued));
        clock.advance(secs(5));
        assert!(matches!(pool.poll(a), Some(JobOutcome::Completed { .. })));
        // The impossible job is still queued — forever.
        assert_eq!(pool.poll(c), Some(JobOutcome::Queued));
    }

    #[test]
    fn matchmaker_queues_when_pool_busy() {
        let clock = ManualClock::new();
        let pool = Matchmaker::new(
            clock.clone(),
            vec![MachineAd::new("m1", &[("os", "linux")])],
        );
        let a = pool.submit(BatchJob::simple("a", "u", secs(10)).requiring("os", "linux"));
        let b = pool.submit(BatchJob::simple("b", "u", secs(10)).requiring("os", "linux"));
        assert!(matches!(pool.poll(a), Some(JobOutcome::Running { .. })));
        assert_eq!(pool.poll(b), Some(JobOutcome::Queued));
        clock.advance(secs(10));
        assert!(
            matches!(pool.poll(b), Some(JobOutcome::Running { started_at }) if started_at == SimTime::from_secs(10))
        );
    }

    #[test]
    fn matchmaker_cancel() {
        let clock = ManualClock::new();
        let pool = Matchmaker::new(clock.clone(), vec![MachineAd::new("m", &[])]);
        let a = pool.submit(BatchJob::simple("a", "u", secs(10)));
        assert!(pool.cancel(a));
        assert_eq!(pool.poll(a), Some(JobOutcome::Cancelled));
        assert_eq!(pool.running_count(), 0);
    }

    #[test]
    fn nonzero_exit_propagates() {
        let clock = ManualClock::new();
        let q = FifoQueue::new(clock.clone(), 1);
        let mut job = BatchJob::simple("bad", "u", secs(1));
        job.exit_code = 3;
        let id = q.submit(job);
        clock.advance(secs(1));
        match q.poll(id) {
            Some(JobOutcome::Completed { status, .. }) => {
                assert_eq!(status, ExitStatus::Code(3))
            }
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use infogram_sim::ManualClock;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum QOp {
        Submit { runtime_ms: u64 },
        Advance { ms: u64 },
        Cancel { idx: usize },
    }

    fn arb_op() -> impl Strategy<Value = QOp> {
        prop_oneof![
            (1u64..500).prop_map(|runtime_ms| QOp::Submit { runtime_ms }),
            (0u64..1000).prop_map(|ms| QOp::Advance { ms }),
            (0usize..16).prop_map(|idx| QOp::Cancel { idx }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under any schedule: never more running jobs than slots; every
        /// completed job has finished_at = started_at + runtime; states
        /// only move forward (Queued → Running → terminal).
        #[test]
        fn fifo_schedule_invariants(
            slots in 1usize..4,
            ops in prop::collection::vec(arb_op(), 1..40),
        ) {
            let clock = ManualClock::new();
            let q = FifoQueue::new(clock.clone(), slots);
            let mut ids: Vec<(QueueJobId, u64)> = Vec::new();
            let mut seen_running: std::collections::HashSet<QueueJobId> = Default::default();
            let mut seen_terminal: std::collections::HashSet<QueueJobId> = Default::default();
            for op in ops {
                match op {
                    QOp::Submit { runtime_ms } => {
                        let id = q.submit(BatchJob::simple(
                            "j",
                            "user",
                            Duration::from_millis(runtime_ms),
                        ));
                        ids.push((id, runtime_ms));
                    }
                    QOp::Advance { ms } => clock.advance(Duration::from_millis(ms)),
                    QOp::Cancel { idx } => {
                        if let Some(&(id, _)) = ids.get(idx) {
                            let _ = q.cancel(id);
                        }
                    }
                }
                prop_assert!(q.running_count() <= slots);
                for &(id, runtime_ms) in &ids {
                    match q.poll(id) {
                        Some(JobOutcome::Queued) => {
                            prop_assert!(!seen_running.contains(&id), "ran then re-queued");
                            prop_assert!(!seen_terminal.contains(&id));
                        }
                        Some(JobOutcome::Running { .. }) => {
                            seen_running.insert(id);
                            prop_assert!(!seen_terminal.contains(&id), "terminal then running");
                        }
                        Some(JobOutcome::Completed {
                            started_at,
                            finished_at,
                            ..
                        }) => {
                            seen_terminal.insert(id);
                            prop_assert_eq!(
                                finished_at.since(started_at),
                                Duration::from_millis(runtime_ms)
                            );
                        }
                        Some(JobOutcome::Cancelled) => {
                            seen_terminal.insert(id);
                        }
                        None => prop_assert!(false, "known id vanished"),
                    }
                }
            }
        }
    }
}
