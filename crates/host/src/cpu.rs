//! CPU load model.
//!
//! The paper's running example (§5.1) is "a large number of clients that
//! need to know the CPU load of a remote compute resource". For the caching
//! and degradation experiments to be meaningful, the underlying load must
//! *drift* — a constant would make every cached value perfectly fresh
//! forever. We model per-host load as a mean-reverting AR(1) process
//! sampled lazily on the host clock, so the "true" load at any time is a
//! deterministic function of (seed, time) and staleness error can be
//! measured exactly.

use infogram_sim::{Clock, SimTime, SplitMix64};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Mean-reverting stochastic CPU load.
///
/// The process advances in fixed `step` increments:
/// `x' = x + phi * (mean - x) + sigma * N(0,1)`, clamped to
/// `[0, max_load]`. One-, five-, and fifteen-minute exponentially weighted
/// averages are maintained alongside, mirroring `/proc/loadavg`.
#[derive(Debug)]
pub struct CpuLoadModel {
    clock: Arc<dyn Clock>,
    inner: Mutex<LoadState>,
    /// Long-run mean load.
    mean: f64,
    /// Mean-reversion strength per step, in `(0, 1]`.
    phi: f64,
    /// Innovation standard deviation per step.
    sigma: f64,
    /// Upper clamp (roughly the CPU count).
    max_load: f64,
    /// Process time step.
    step: Duration,
}

#[derive(Debug)]
struct LoadState {
    rng: SplitMix64,
    /// Time up to which the process has been advanced.
    advanced_to: SimTime,
    instantaneous: f64,
    load1: f64,
    load5: f64,
    load15: f64,
}

impl CpuLoadModel {
    /// A load process with sensible defaults: 1-second steps, mean
    /// reversion 0.1, innovation 0.15.
    pub fn new(clock: Arc<dyn Clock>, seed: u64, mean: f64, max_load: f64) -> Self {
        CpuLoadModel {
            clock,
            inner: Mutex::new(LoadState {
                rng: SplitMix64::new(seed),
                advanced_to: SimTime::ZERO,
                instantaneous: mean,
                load1: mean,
                load5: mean,
                load15: mean,
            }),
            mean,
            phi: 0.1,
            sigma: 0.15,
            max_load,
            step: Duration::from_secs(1),
        }
    }

    /// Override the process volatility (used by the degradation benchmarks
    /// to sweep how fast information goes stale).
    pub fn with_dynamics(mut self, phi: f64, sigma: f64, step: Duration) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi out of range");
        assert!(sigma >= 0.0, "sigma negative");
        assert!(step > Duration::ZERO, "zero step");
        self.phi = phi;
        self.sigma = sigma;
        self.step = step;
        self
    }

    fn advance_to(&self, t: SimTime, st: &mut LoadState) {
        let step_ns = self.step.as_nanos() as u64;
        // EWMA decay constants per step for 1/5/15-minute averages.
        let dt = self.step.as_secs_f64();
        let a1 = (-dt / 60.0).exp();
        let a5 = (-dt / 300.0).exp();
        let a15 = (-dt / 900.0).exp();
        while st.advanced_to.as_nanos() + step_ns <= t.as_nanos() {
            let noise = st.rng.standard_normal();
            let x =
                st.instantaneous + self.phi * (self.mean - st.instantaneous) + self.sigma * noise;
            st.instantaneous = x.clamp(0.0, self.max_load);
            st.load1 = a1 * st.load1 + (1.0 - a1) * st.instantaneous;
            st.load5 = a5 * st.load5 + (1.0 - a5) * st.instantaneous;
            st.load15 = a15 * st.load15 + (1.0 - a15) * st.instantaneous;
            st.advanced_to = SimTime::from_nanos(st.advanced_to.as_nanos() + step_ns);
        }
    }

    /// The instantaneous load right now.
    pub fn current(&self) -> f64 {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        self.advance_to(now, &mut st);
        st.instantaneous
    }

    /// `(load1, load5, load15)` triple, as `/proc/loadavg` reports.
    pub fn load_averages(&self) -> (f64, f64, f64) {
        let now = self.clock.now();
        let mut st = self.inner.lock();
        self.advance_to(now, &mut st);
        (st.load1, st.load5, st.load15)
    }

    /// Long-run mean the process reverts to.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;

    fn model(seed: u64) -> (Arc<ManualClock>, CpuLoadModel) {
        let clock = ManualClock::new();
        let m = CpuLoadModel::new(clock.clone(), seed, 1.0, 4.0);
        (clock, m)
    }

    #[test]
    fn load_stays_in_bounds() {
        let (clock, m) = model(1);
        for _ in 0..500 {
            clock.advance(Duration::from_secs(2));
            let l = m.current();
            assert!((0.0..=4.0).contains(&l), "load {l}");
        }
    }

    #[test]
    fn load_actually_drifts() {
        let (clock, m) = model(2);
        let a = m.current();
        clock.advance(Duration::from_secs(120));
        let b = m.current();
        // With sigma=0.15 over 120 steps the chance of an identical value
        // is nil.
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_given_seed_and_time() {
        let (c1, m1) = model(42);
        let (c2, m2) = model(42);
        c1.advance(Duration::from_secs(300));
        c2.advance(Duration::from_secs(300));
        assert_eq!(m1.current(), m2.current());
        assert_eq!(m1.load_averages(), m2.load_averages());
    }

    #[test]
    fn no_time_no_change() {
        let (_clock, m) = model(3);
        let a = m.current();
        let b = m.current();
        assert_eq!(a, b);
    }

    #[test]
    fn averages_smoother_than_instantaneous() {
        let (clock, m) = model(4);
        let mut inst_sq = 0.0;
        let mut l15_sq = 0.0;
        let mut prev_inst = m.current();
        let mut prev_l15 = m.load_averages().2;
        for _ in 0..600 {
            clock.advance(Duration::from_secs(1));
            let i = m.current();
            let (_, _, l15) = m.load_averages();
            inst_sq += (i - prev_inst).powi(2);
            l15_sq += (l15 - prev_l15).powi(2);
            prev_inst = i;
            prev_l15 = l15;
        }
        assert!(
            l15_sq < inst_sq / 10.0,
            "load15 should be much smoother: {l15_sq} vs {inst_sq}"
        );
    }

    #[test]
    fn reverts_toward_mean() {
        let (clock, m) = model(5);
        clock.advance(Duration::from_secs(3600));
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            clock.advance(Duration::from_secs(1));
            sum += m.current();
        }
        let avg = sum / n as f64;
        assert!((avg - 1.0).abs() < 0.3, "long-run average {avg}");
    }
}
