//! The unified dispatcher: one protocol, two behaviours.
//!
//! §6.6: "At the protocol level we have replaced an LDAP search query
//! with a query cast as a simple job submission through RSL." A submit
//! whose xRSL carries `(info=...)` is answered with rendered information
//! records; one carrying `(executable=...)` is a job submission; a
//! specification with both is rejected as ambiguous.

use infogram_exec::gram::{dispatch_job_request, ConnCtx, RequestDispatcher};
use infogram_exec::JobEngine;
use infogram_info::service::{InfoServiceError, InformationService, QueryOptions};
use infogram_info::{OutboxSink, QueryError, RefreshScheduler, SubscriptionHub, JOBS_KEYWORD};
use infogram_proto::message::{codes, Reply, Request};
use infogram_proto::render;
use infogram_rsl::{RequestAction, RequestKind, XrslRequest};
use infogram_sim::metrics::{Counter, Histogram};
use infogram_sim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// Interned per-request-kind instrument handles (`dispatch.<kind>`
/// histogram plus `.ok`/`.err` counters), resolved once at construction
/// so the dispatch hot path never formats a metric name.
struct KindMetrics {
    latency: Arc<Histogram>,
    ok: Arc<Counter>,
    err: Arc<Counter>,
}

impl KindMetrics {
    fn intern(telemetry: &infogram_sim::metrics::MetricSet, kind: &str) -> Self {
        KindMetrics {
            latency: telemetry.histogram(&format!("dispatch.{kind}")),
            ok: telemetry.counter(&format!("dispatch.{kind}.ok")),
            err: telemetry.counter(&format!("dispatch.{kind}.err")),
        }
    }
}

/// The InfoGram request dispatcher.
pub struct InfoGramDispatcher {
    engine: Arc<JobEngine>,
    info: Arc<InformationService>,
    hub: Arc<SubscriptionHub>,
    /// Set once the service wires a refresh scheduler; subscribes then
    /// put their keywords on the wheel so updates flow without polling.
    sched: Mutex<Option<Arc<RefreshScheduler>>>,
    job: KindMetrics,
    status: KindMetrics,
    cancel: KindMetrics,
    ping: KindMetrics,
    info_kind: KindMetrics,
    sub_kind: KindMetrics,
}

impl InfoGramDispatcher {
    /// Wire a job engine and an information service together. Also
    /// installs the engine-wide state-change watcher that publishes job
    /// transitions to `(action=subscribe)(info=jobs)` subscribers.
    pub fn new(engine: Arc<JobEngine>, info: Arc<InformationService>) -> Arc<Self> {
        let t = engine.metrics().clone();
        let hub = SubscriptionHub::new(engine.clock().clone(), info.hostname(), t.clone());
        {
            let hub = Arc::clone(&hub);
            engine.on_state_change(move |handle, state| hub.notify_job(&handle, state));
        }
        Arc::new(InfoGramDispatcher {
            job: KindMetrics::intern(&t, "job"),
            status: KindMetrics::intern(&t, "status"),
            cancel: KindMetrics::intern(&t, "cancel"),
            ping: KindMetrics::intern(&t, "ping"),
            info_kind: KindMetrics::intern(&t, "info"),
            sub_kind: KindMetrics::intern(&t, "subscribe"),
            hub,
            sched: Mutex::new(None),
            engine,
            info,
        })
    }

    /// The subscription index behind `(action=subscribe)`.
    pub fn hub(&self) -> &Arc<SubscriptionHub> {
        &self.hub
    }

    /// Wire the refresh scheduler subscribes register their keywords
    /// with. Without one, subscriptions still receive job-state pushes
    /// and any refreshes driven externally, but nothing schedules
    /// keyword refreshes on their behalf.
    pub fn set_scheduler(&self, sched: Arc<RefreshScheduler>) {
        *self.sched.lock() = Some(sched);
    }

    /// The telemetry handle shared with the engine — the WS gateway and
    /// the `Metrics:` provider instrument through it.
    pub fn telemetry(&self) -> &infogram_sim::metrics::MetricSet {
        self.engine.metrics()
    }

    /// Answer an information query.
    fn dispatch_info(&self, owner: &str, account: &str, req: &XrslRequest) -> Reply {
        let keywords = req
            .info
            .iter()
            .map(|s| match s {
                infogram_rsl::InfoSelector::All => "all".to_string(),
                infogram_rsl::InfoSelector::Schema => "schema".to_string(),
                infogram_rsl::InfoSelector::Keyword(k) => k.clone(),
            })
            .collect::<Vec<_>>()
            .join(",");
        self.engine.log_info_query(owner, account, &keywords);
        let opts = QueryOptions {
            mode: req.response,
            quality_threshold: req.quality,
            filter: req.filter.clone(),
            performance: req.performance,
            // `(timeout=...)` bounds the provider deadline budget; absent,
            // each keyword's TTL-proportional default applies.
            deadline: req.timeout,
        };
        match self.info.answer(&req.info, &opts) {
            Ok(records) => Reply::InfoResult {
                body: render::render(&records, req.format),
                record_count: records.len() as u32,
            },
            Err(InfoServiceError::UnknownKeyword(k)) => Reply::Error {
                code: codes::NO_SUCH_KEYWORD,
                message: format!("no information provider for keyword '{k}'"),
            },
            Err(InfoServiceError::Query(QueryError::NeverProduced)) => Reply::Error {
                code: codes::NO_SUCH_KEYWORD,
                message: "(response=last) before any value was produced".to_string(),
            },
            // Breaker open with nothing cached: a distinct, retryable
            // rejection whose message carries the `retry-after-ms=` hint
            // (the QueryError Display emits it).
            Err(InfoServiceError::Query(e @ QueryError::Unavailable { .. })) => Reply::Error {
                code: codes::UNAVAILABLE,
                message: e.to_string(),
            },
            Err(InfoServiceError::Query(e)) => Reply::Error {
                code: codes::INTERNAL,
                message: e.to_string(),
            },
        }
    }

    /// Open a persistent query: `(action=subscribe)(info=...)`.
    fn dispatch_subscribe(
        &self,
        owner: &str,
        account: &str,
        req: &XrslRequest,
        ctx: &mut ConnCtx,
    ) -> Reply {
        let Some(outbox) = ctx.outbox() else {
            // Detached dispatch (the WS gateway, unit tests) has no push
            // channel — a subscription would have nowhere to stream.
            return Reply::Error {
                code: codes::UNSUPPORTED,
                message: "(action=subscribe) needs a connection that can carry unsolicited \
                          frames; the WS syntax is request/response only"
                    .to_string(),
            };
        };
        let outbox = Arc::clone(outbox);
        let sched = self.sched.lock().clone();
        let mut keywords = Vec::with_capacity(req.info.len());
        for sel in &req.info {
            let k = match sel {
                // `all`/`schema` expand to unstable keyword sets — a
                // subscription must name what it watches so the hub can
                // index the fan-out per keyword.
                infogram_rsl::InfoSelector::All | infogram_rsl::InfoSelector::Schema => {
                    return Reply::Error {
                        code: codes::BAD_RSL,
                        message: "(action=subscribe) takes explicit keywords; (info=all) and \
                                  (info=schema) cannot be watched"
                            .to_string(),
                    }
                }
                infogram_rsl::InfoSelector::Keyword(k) => k,
            };
            if k.eq_ignore_ascii_case(JOBS_KEYWORD) {
                keywords.push(JOBS_KEYWORD.to_string());
                continue;
            }
            let Some(si) = self.info.lookup(k) else {
                return Reply::Error {
                    code: codes::NO_SUCH_KEYWORD,
                    message: format!("no information provider for keyword '{k}'"),
                };
            };
            // Put the keyword on the refresh wheel so updates flow
            // without anyone polling; already-watched keywords keep
            // their schedule and demand history. TTL-0 keywords cannot
            // be scheduled — their subscribers only see pushes driven
            // by external refreshes.
            if let Some(s) = &sched {
                if !s.is_watched(k) {
                    let _ = s.watch(Arc::clone(&si), self.info.keyword_metrics(k));
                }
            }
            keywords.push(si.keyword().to_string());
        }
        self.engine
            .log_info_query(owner, account, &format!("subscribe:{}", keywords.join(",")));
        let id = self.hub.subscribe(&keywords, OutboxSink::new(outbox));
        ctx.sub_ids.push(id);
        Reply::Subscribed {
            id,
            count: keywords.len() as u32,
        }
    }

    /// Close a persistent query: `(action=unsubscribe)(subscription=N)`.
    fn dispatch_unsubscribe(&self, req: &XrslRequest, ctx: &mut ConnCtx) -> Reply {
        // The parser guarantees the tag is present for this action.
        let id = req.subscription.unwrap_or(0);
        // A connection may only close subscriptions it opened — ids are
        // global, so an unchecked unsubscribe would let one client tear
        // down another's stream.
        let Some(pos) = ctx.sub_ids.iter().position(|s| *s == id) else {
            return Reply::Error {
                code: codes::NO_SUCH_JOB,
                message: format!("no subscription {id} on this connection"),
            };
        };
        ctx.sub_ids.remove(pos);
        self.hub.unsubscribe(id);
        // The SubEnd travels as the reply to this request, not through
        // the sink: the stream is already quiesced by `unsubscribe`.
        Reply::SubEnd {
            id,
            code: 0,
            message: "unsubscribed".to_string(),
        }
    }

    /// Record latency and outcome for one dispatched request: the elapsed
    /// service-clock time goes into the `dispatch.<kind>` histogram and
    /// the reply bumps `dispatch.<kind>.ok` or `dispatch.<kind>.err` —
    /// all through handles interned at construction.
    fn observe(&self, kind: &KindMetrics, start: SimTime, reply: Reply) -> Reply {
        let elapsed = self.engine.clock().now().since(start);
        kind.latency.record(elapsed);
        if matches!(reply, Reply::Error { .. }) {
            kind.err.incr();
        } else {
            kind.ok.incr();
        }
        reply
    }
}

impl RequestDispatcher for InfoGramDispatcher {
    fn dispatch(&self, owner: &str, account: &str, request: Request, ctx: &mut ConnCtx) -> Reply {
        let start = self.engine.clock().now();
        // Jobs, status, cancel, ping: identical to GRAM.
        if let Some(reply) = dispatch_job_request(&self.engine, owner, account, &request, ctx) {
            let kind = match &request {
                Request::Submit { .. } => &self.job,
                Request::Status { .. } => &self.status,
                Request::Cancel { .. } => &self.cancel,
                Request::Ping => &self.ping,
            };
            return self.observe(kind, start, reply);
        }
        // What remains is a Submit that is an info query, a subscription
        // action, or empty/bad — everything below is accounted under
        // `dispatch.info` or `dispatch.subscribe`.
        let Request::Submit { rsl, .. } = &request else {
            unreachable!("dispatch_job_request answers everything but info submits");
        };
        let req = match XrslRequest::from_text(rsl) {
            Ok(r) => r,
            Err(e) => {
                return self.observe(
                    &self.info_kind,
                    start,
                    Reply::Error {
                        code: codes::BAD_RSL,
                        message: e.to_string(),
                    },
                )
            }
        };
        match req.action {
            RequestAction::Subscribe => {
                let reply = self.dispatch_subscribe(owner, account, &req, ctx);
                return self.observe(&self.sub_kind, start, reply);
            }
            RequestAction::Unsubscribe => {
                let reply = self.dispatch_unsubscribe(&req, ctx);
                return self.observe(&self.sub_kind, start, reply);
            }
            RequestAction::None => {}
        }
        let reply = match req.kind() {
            RequestKind::Info => self.dispatch_info(owner, account, &req),
            RequestKind::Empty => Reply::Error {
                code: codes::BAD_RSL,
                message: "specification has neither (executable=) nor (info=)".to_string(),
            },
            // Job/Both were already answered by dispatch_job_request.
            _ => unreachable!("job kinds handled earlier"),
        };
        self.observe(&self.info_kind, start, reply)
    }

    fn connection_closed(&self, ctx: &mut ConnCtx) {
        // The peer is gone: silently release every subscription it
        // still holds (no SubEnd — there is nobody to read it).
        self.hub.drop_all(&ctx.sub_ids);
        ctx.sub_ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_exec::backend::ForkBackend;
    use infogram_exec::engine::EngineConfig;
    use infogram_exec::Wal;
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::SimulatedHost;
    use infogram_info::config::ServiceConfig;
    use infogram_proto::message::JobStateCode;
    use infogram_sim::metrics::MetricSet;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    fn world() -> (Arc<ManualClock>, Arc<InfoGramDispatcher>) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let registry = CommandRegistry::new(host, ChargeMode::None);
        let info = InformationService::from_config(
            &ServiceConfig::table1(),
            Arc::clone(&registry),
            clock.clone(),
            MetricSet::new(),
        );
        let engine = JobEngine::new(
            EngineConfig::default(),
            clock.clone(),
            Wal::in_memory(),
            ForkBackend::new(registry),
            MetricSet::new(),
        );
        (clock.clone(), InfoGramDispatcher::new(engine, info))
    }

    fn submit(rsl: &str) -> Request {
        Request::Submit {
            rsl: rsl.to_string(),
            callback: false,
        }
    }

    fn dispatch(d: &InfoGramDispatcher, req: Request) -> Reply {
        let mut ctx = ConnCtx::detached();
        d.dispatch("/O=Grid/CN=T", "t", req, &mut ctx)
    }

    #[test]
    fn info_query_returns_ldif() {
        let (_c, d) = world();
        let reply = dispatch(&d, submit("(info=memory)"));
        match reply {
            Reply::InfoResult { body, record_count } => {
                assert_eq!(record_count, 1);
                assert!(body.contains("Memory-total:"));
                assert!(body.starts_with("dn: kw=Memory"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_concatenated_query() {
        // §6.6: "(info=memory)(info=cpu)"
        let (_c, d) = world();
        match dispatch(&d, submit("(info=memory)(info=cpu)")) {
            Reply::InfoResult { record_count, body } => {
                assert_eq!(record_count, 2);
                assert!(body.contains("kw=Memory"));
                assert!(body.contains("kw=CPU"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xml_format_tag() {
        let (_c, d) = world();
        match dispatch(&d, submit("(info=cpu)(format=xml)")) {
            Reply::InfoResult { body, .. } => {
                assert!(body.starts_with("<infogram>"));
                assert!(body.contains("CPU:count"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn schema_reflection() {
        let (_c, d) = world();
        match dispatch(&d, submit("(info=schema)")) {
            Reply::InfoResult { record_count, body } => {
                assert_eq!(record_count, 5);
                assert!(body.contains("Schema.CPULoad"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn job_submission_still_works() {
        let (clock, d) = world();
        let reply = dispatch(&d, submit("(executable=simwork)(arguments=100)"));
        let handle = match reply {
            Reply::JobAccepted { handle } => handle,
            other => panic!("{other:?}"),
        };
        clock.advance(Duration::from_millis(100));
        match dispatch(&d, Request::Status { handle }) {
            Reply::JobStatus { state, .. } => assert_eq!(state, JobStateCode::Done),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambiguous_request_rejected() {
        let (_c, d) = world();
        match dispatch(&d, submit("&(executable=/bin/ls)(info=cpu)")) {
            Reply::Error { code, .. } => assert_eq!(code, codes::AMBIGUOUS_REQUEST),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_request_rejected() {
        let (_c, d) = world();
        match dispatch(&d, submit("(format=xml)")) {
            Reply::Error { code, .. } => assert_eq!(code, codes::BAD_RSL),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_keyword_error_code() {
        let (_c, d) = world();
        match dispatch(&d, submit("(info=Bogus)")) {
            Reply::Error { code, message } => {
                assert_eq!(code, codes::NO_SUCH_KEYWORD);
                assert!(message.contains("Bogus"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_last_before_production() {
        let (_c, d) = world();
        match dispatch(&d, submit("(info=cpu)(response=last)")) {
            Reply::Error { code, .. } => assert_eq!(code, codes::NO_SUCH_KEYWORD),
            other => panic!("{other:?}"),
        }
        // After a cached read, `last` works.
        dispatch(&d, submit("(info=cpu)"));
        match dispatch(&d, submit("(info=cpu)(response=last)")) {
            Reply::InfoResult { record_count, .. } => assert_eq!(record_count, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn performance_tag_round_trips() {
        let (_c, d) = world();
        dispatch(&d, submit("(info=list)"));
        match dispatch(&d, submit("(info=list)(performance=true)")) {
            Reply::InfoResult { body, .. } => {
                assert!(body.contains("list-perf.mean_seconds"));
                assert!(body.contains("list-perf.std_seconds"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filter_tag_narrows_result() {
        let (_c, d) = world();
        match dispatch(
            &d,
            submit("(info=memory)(filter=Memory:free)(format=plain)"),
        ) {
            Reply::InfoResult { body, .. } => {
                assert!(body.contains("Memory:free"));
                assert!(!body.contains("Memory:total"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_rsl_rejected() {
        let (_c, d) = world();
        match dispatch(&d, submit("((((")) {
            Reply::Error { code, .. } => assert_eq!(code, codes::BAD_RSL),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ping_answered() {
        let (_c, d) = world();
        assert_eq!(dispatch(&d, Request::Ping), Reply::Pong);
    }

    #[test]
    fn subscribe_detached_refused() {
        // Without an outbox (WS gateway, tests) there is no push channel.
        let (_c, d) = world();
        match dispatch(&d, submit("(action=subscribe)(info=cpu)")) {
            Reply::Error { code, message } => {
                assert_eq!(code, codes::UNSUPPORTED);
                assert!(message.contains("subscribe"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsubscribe_unknown_id_refused() {
        let (_c, d) = world();
        match dispatch(&d, submit("(action=unsubscribe)(subscription=7)")) {
            Reply::Error { code, message } => {
                assert_eq!(code, codes::NO_SUCH_JOB);
                assert!(message.contains("7"));
            }
            other => panic!("{other:?}"),
        }
    }

    fn outbox_ctx() -> (ConnCtx, Box<dyn infogram_proto::transport::Conn>) {
        use infogram_proto::transport::{mem::MemNetwork, Transport};
        let net = MemNetwork::ideal();
        let listener = net.listen("d.grid:1").unwrap();
        let client = net.connect("d.grid:1").unwrap();
        let server: Arc<dyn infogram_proto::transport::Conn> =
            Arc::from(listener.accept().unwrap());
        let outbox = infogram_proto::Outbox::new(server, 32);
        (ConnCtx::new(outbox), client)
    }

    #[test]
    fn subscribe_unknown_keyword_refused() {
        let (_c, d) = world();
        let (mut ctx, _client) = outbox_ctx();
        match d.dispatch(
            "/O=Grid/CN=T",
            "t",
            submit("(action=subscribe)(info=Bogus)"),
            &mut ctx,
        ) {
            Reply::Error { code, .. } => assert_eq!(code, codes::NO_SUCH_KEYWORD),
            other => panic!("{other:?}"),
        }
        assert!(ctx.sub_ids.is_empty(), "failed subscribe leaves no id");
    }

    #[test]
    fn subscribe_then_unsubscribe_over_outbox() {
        let (_c, d) = world();
        let (mut ctx, _client) = outbox_ctx();
        let id = match d.dispatch(
            "/O=Grid/CN=T",
            "t",
            submit("(action=subscribe)(info=cpu)(info=jobs)"),
            &mut ctx,
        ) {
            Reply::Subscribed { id, count } => {
                assert_eq!(count, 2);
                id
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(ctx.sub_ids, vec![id]);
        assert_eq!(d.hub().active(), 1);
        match d.dispatch(
            "/O=Grid/CN=T",
            "t",
            submit(&format!("(action=unsubscribe)(subscription={id})")),
            &mut ctx,
        ) {
            Reply::SubEnd { id: sid, code, .. } => {
                assert_eq!(sid, id);
                assert_eq!(code, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(ctx.sub_ids.is_empty());
        assert_eq!(d.hub().active(), 0);
    }

    #[test]
    fn connection_closed_releases_subscriptions() {
        let (_c, d) = world();
        let (mut ctx, _client) = outbox_ctx();
        match d.dispatch(
            "/O=Grid/CN=T",
            "t",
            submit("(action=subscribe)(info=jobs)"),
            &mut ctx,
        ) {
            Reply::Subscribed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(d.hub().active(), 1);
        d.connection_closed(&mut ctx);
        assert_eq!(d.hub().active(), 0);
        assert!(ctx.sub_ids.is_empty());
    }
}
