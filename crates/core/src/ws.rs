//! The Web-services gateway: forwards compatibility.
//!
//! §6.6 of the paper: "we developed our first prototype architecture as a
//! Web service ... we thought that such an effort could be performed in a
//! second step (as it is now performed as part of the Open Grid Service
//! Architecture)." And §11: "It is straight forward to cast the InfoGram
//! in WSDL."
//!
//! This module is that second step: the *same* operations (submit,
//! status, cancel, ping — with info queries travelling as submits, as
//! always) exposed through an XML envelope instead of the binary GRAM
//! framing. A [`WsGateway`] runs next to the native gatekeeper and
//! forwards every decoded envelope into the very same
//! [`InfoGramDispatcher`] — one service, two wire syntaxes, which is
//! exactly the OGSA transition story.
//!
//! The envelope is deliberately SOAP-shaped but minimal:
//!
//! ```xml
//! <envelope xmlns="urn:infogram:2002"><body>
//!   <submit callback="false"><rsl>(info=memory)</rsl></submit>
//! </body></envelope>
//! ```
//!
//! The gateway does not speak GSI (the 2002 WS world had WS-Security in
//! its future); it is constructed with a fixed *gateway principal* whose
//! gridmap account every WS request runs as, the deployment mode a
//! transitional site would use. Event callbacks are not available over
//! the WS syntax (request/response only).

use crate::dispatch::InfoGramDispatcher;
use infogram_exec::gram::RequestDispatcher;
use infogram_proto::handle::JobHandle;
use infogram_proto::message::{codes, JobStateCode, Reply, Request};
use infogram_proto::render::xml::{escape, unescape};
use infogram_proto::transport::{Conn, Listener, ProtoError, Transport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The envelope namespace.
pub const WS_NAMESPACE: &str = "urn:infogram:2002";

/// An envelope failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsError {
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for WsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ws envelope error: {}", self.reason)
    }
}

impl std::error::Error for WsError {}

fn err(reason: &str) -> WsError {
    WsError {
        reason: reason.to_string(),
    }
}

/// `<tag ...>content</tag>` → content, unescaped.
fn tag_content(xml: &str, tag: &str) -> Option<String> {
    let open_a = format!("<{tag}>");
    let open_b = format!("<{tag} ");
    let close = format!("</{tag}>");
    let start = if let Some(p) = xml.find(&open_a) {
        p + open_a.len()
    } else {
        let p = xml.find(&open_b)?;
        p + xml[p..].find('>')? + 1
    };
    let end = xml[start..].find(&close)? + start;
    Some(unescape(&xml[start..end]))
}

/// `name="value"` attribute inside the first occurrence of `<tag`.
fn tag_attr(xml: &str, tag: &str, name: &str) -> Option<String> {
    let open = format!("<{tag}");
    let p = xml.find(&open)?;
    let rest = &xml[p..p + xml[p..].find('>')?];
    let marker = format!("{name}=\"");
    let start = rest.find(&marker)? + marker.len();
    let end = rest[start..].find('"')? + start;
    Some(unescape(&rest[start..end]))
}

fn envelope(body: &str) -> String {
    format!("<envelope xmlns=\"{WS_NAMESPACE}\"><body>{body}</body></envelope>")
}

/// Encode a protocol request as an XML envelope.
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Submit { rsl, callback } => envelope(&format!(
            "<submit callback=\"{callback}\"><rsl>{}</rsl></submit>",
            escape(rsl)
        )),
        Request::Status { handle } => envelope(&format!(
            "<status><handle>{}</handle></status>",
            escape(&handle.to_string())
        )),
        Request::Cancel { handle } => envelope(&format!(
            "<cancel><handle>{}</handle></cancel>",
            escape(&handle.to_string())
        )),
        Request::Ping => envelope("<ping/>"),
    }
}

/// Decode an XML envelope into a protocol request.
pub fn decode_request(xml: &str) -> Result<Request, WsError> {
    let xml = std::str::from_utf8(xml.as_bytes()).map_err(|_| err("not utf-8"))?;
    if !xml.contains(WS_NAMESPACE) {
        return Err(err("missing infogram namespace"));
    }
    if xml.contains("<ping/>") || xml.contains("<ping>") {
        return Ok(Request::Ping);
    }
    if xml.contains("<submit") {
        let rsl = tag_content(xml, "rsl").ok_or_else(|| err("submit lacks <rsl>"))?;
        let callback = tag_attr(xml, "submit", "callback")
            .map(|v| v == "true")
            .unwrap_or(false);
        return Ok(Request::Submit { rsl, callback });
    }
    for (tag, make) in [("status", true), ("cancel", false)] {
        if xml.contains(&format!("<{tag}")) {
            let h = tag_content(xml, "handle").ok_or_else(|| err("missing <handle>"))?;
            let handle = JobHandle::parse(&h).map_err(|e| err(&e.to_string()))?;
            return Ok(if make {
                Request::Status { handle }
            } else {
                Request::Cancel { handle }
            });
        }
    }
    Err(err("no recognized operation in envelope"))
}

/// Encode a protocol reply as an XML envelope.
pub fn encode_reply(reply: &Reply) -> String {
    match reply {
        Reply::JobAccepted { handle } => envelope(&format!(
            "<jobAccepted><handle>{}</handle></jobAccepted>",
            escape(&handle.to_string())
        )),
        Reply::JobStatus {
            handle,
            state,
            exit_code,
            output,
        } => {
            let exit = exit_code
                .map(|e| format!(" exit=\"{e}\""))
                .unwrap_or_default();
            envelope(&format!(
                "<jobStatus state=\"{state}\"{exit}><handle>{}</handle><output>{}</output></jobStatus>",
                escape(&handle.to_string()),
                escape(output)
            ))
        }
        Reply::InfoResult { body, record_count } => envelope(&format!(
            "<infoResult count=\"{record_count}\"><data>{}</data></infoResult>",
            escape(body)
        )),
        Reply::Event { handle, state } => envelope(&format!(
            "<event state=\"{state}\"><handle>{}</handle></event>",
            escape(&handle.to_string())
        )),
        Reply::Error { code, message } => envelope(&format!(
            "<fault code=\"{code}\">{}</fault>",
            escape(message)
        )),
        Reply::Pong => envelope("<pong/>"),
        Reply::Subscribed { id, count } => {
            envelope(&format!("<subscribed id=\"{id}\" count=\"{count}\"/>"))
        }
        Reply::SubEnd { id, code, message } => envelope(&format!(
            "<subEnd id=\"{id}\" code=\"{code}\">{}</subEnd>",
            escape(message)
        )),
        // The gateway refuses `(action=subscribe)` (its dispatch context
        // is detached), so no Update stream can reach this encoder; the
        // binary delta payload has no XML form, and a stray one degrades
        // to a fault rather than a lossy imitation.
        Reply::Update { id, .. } => envelope(&format!(
            "<fault code=\"{}\">subscription {id} updates are not representable \
             in the WS syntax</fault>",
            codes::UNSUPPORTED
        )),
    }
}

/// Decode an XML envelope into a protocol reply.
pub fn decode_reply(xml: &str) -> Result<Reply, WsError> {
    if !xml.contains(WS_NAMESPACE) {
        return Err(err("missing infogram namespace"));
    }
    if xml.contains("<pong/>") {
        return Ok(Reply::Pong);
    }
    if xml.contains("<jobAccepted>") {
        let h = tag_content(xml, "handle").ok_or_else(|| err("missing handle"))?;
        return Ok(Reply::JobAccepted {
            handle: JobHandle::parse(&h).map_err(|e| err(&e.to_string()))?,
        });
    }
    if xml.contains("<jobStatus") {
        let h = tag_content(xml, "handle").ok_or_else(|| err("missing handle"))?;
        let state = tag_attr(xml, "jobStatus", "state")
            .and_then(|s| JobStateCode::from_name(&s))
            .ok_or_else(|| err("bad state"))?;
        let exit_code = tag_attr(xml, "jobStatus", "exit").and_then(|e| e.parse().ok());
        let output = tag_content(xml, "output").unwrap_or_default();
        return Ok(Reply::JobStatus {
            handle: JobHandle::parse(&h).map_err(|e| err(&e.to_string()))?,
            state,
            exit_code,
            output,
        });
    }
    if xml.contains("<infoResult") {
        let count = tag_attr(xml, "infoResult", "count")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| err("bad count"))?;
        let body = tag_content(xml, "data").ok_or_else(|| err("missing data"))?;
        return Ok(Reply::InfoResult {
            body,
            record_count: count,
        });
    }
    if xml.contains("<event") {
        let h = tag_content(xml, "handle").ok_or_else(|| err("missing handle"))?;
        let state = tag_attr(xml, "event", "state")
            .and_then(|s| JobStateCode::from_name(&s))
            .ok_or_else(|| err("bad state"))?;
        return Ok(Reply::Event {
            handle: JobHandle::parse(&h).map_err(|e| err(&e.to_string()))?,
            state,
        });
    }
    if xml.contains("<subscribed") {
        let id = tag_attr(xml, "subscribed", "id")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("bad subscription id"))?;
        let count = tag_attr(xml, "subscribed", "count")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("bad subscription count"))?;
        return Ok(Reply::Subscribed { id, count });
    }
    if xml.contains("<subEnd") {
        let id = tag_attr(xml, "subEnd", "id")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("bad subscription id"))?;
        let code = tag_attr(xml, "subEnd", "code")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("bad subEnd code"))?;
        let message = tag_content(xml, "subEnd").unwrap_or_default();
        return Ok(Reply::SubEnd { id, code, message });
    }
    if xml.contains("<fault") {
        let code = tag_attr(xml, "fault", "code")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| err("bad fault code"))?;
        let message = tag_content(xml, "fault").unwrap_or_default();
        return Ok(Reply::Error { code, message });
    }
    Err(err("no recognized reply in envelope"))
}

/// A running WS gateway next to a native InfoGram service.
pub struct WsGateway {
    addr: String,
    listener: Arc<Box<dyn Listener>>,
    running: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WsGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WsGateway")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl WsGateway {
    /// Start a gateway forwarding into `dispatcher` under the given
    /// gateway principal (`owner` DN string, local `account`).
    pub fn start(
        dispatcher: Arc<InfoGramDispatcher>,
        owner: &str,
        account: &str,
        transport: &dyn Transport,
        bind_addr: &str,
    ) -> Result<Arc<Self>, ProtoError> {
        let listener: Arc<Box<dyn Listener>> = Arc::new(transport.listen(bind_addr)?);
        let addr = listener.local_addr();
        let gateway = Arc::new(WsGateway {
            addr,
            listener: Arc::clone(&listener),
            running: Arc::new(AtomicBool::new(true)),
            accept_thread: Mutex::new(None),
        });
        let gw = Arc::clone(&gateway);
        let owner = owner.to_string();
        let account = account.to_string();
        let telemetry = dispatcher.telemetry().clone();
        // lint:allow(thread-spawn) — long-lived accept loop; joined via
        // accept_thread on shutdown, so sim::par's scoped join is the
        // wrong shape.
        let handle = std::thread::spawn(move || {
            while gw.running.load(Ordering::SeqCst) {
                let Ok(conn) = gw.listener.accept() else {
                    break;
                };
                telemetry.counter("ws.connections").incr();
                let conn: Arc<dyn Conn> = Arc::from(conn);
                let dispatcher = Arc::clone(&dispatcher);
                let owner = owner.clone();
                let account = account.clone();
                let telemetry = telemetry.clone();
                // lint:allow(thread-spawn) — per-connection server thread
                // detaches for the connection's lifetime (client-paced, no
                // bounded join point for a scoped pool).
                std::thread::spawn(move || {
                    // Detached: no event callbacks and no push
                    // subscriptions over the WS syntax.
                    let mut ctx = infogram_exec::gram::ConnCtx::detached();
                    while let Ok(bytes) = conn.recv() {
                        telemetry.counter("ws.requests").incr();
                        let reply = match std::str::from_utf8(&bytes)
                            .map_err(|_| err("not utf-8"))
                            .and_then(decode_request)
                        {
                            Ok(request) => dispatcher.dispatch(&owner, &account, request, &mut ctx),
                            Err(e) => Reply::Error {
                                code: infogram_proto::message::codes::BAD_RSL,
                                message: e.to_string(),
                            },
                        };
                        if conn.send(encode_reply(&reply).as_bytes()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        *gateway.accept_thread.lock() = Some(handle);
        Ok(gateway)
    }

    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// A minimal WS client speaking envelopes.
pub struct WsClient {
    conn: Box<dyn Conn>,
}

impl std::fmt::Debug for WsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WsClient").finish_non_exhaustive()
    }
}

impl WsClient {
    /// Connect to a gateway.
    pub fn connect(transport: &dyn Transport, addr: &str) -> Result<WsClient, ProtoError> {
        Ok(WsClient {
            conn: transport.connect(addr)?,
        })
    }

    /// Issue one request and read the reply.
    pub fn call(&mut self, request: &Request) -> Result<Reply, WsError> {
        self.conn
            .send(encode_request(request).as_bytes())
            .map_err(|e| err(&e.to_string()))?;
        let bytes = self.conn.recv().map_err(|e| err(&e.to_string()))?;
        decode_reply(std::str::from_utf8(&bytes).map_err(|_| err("not utf-8"))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests_support::start_default_service;

    fn handle() -> JobHandle {
        JobHandle::new("gk.grid", 2119, 9, 2)
    }

    #[test]
    fn request_envelope_roundtrip() {
        let reqs = [
            Request::Submit {
                rsl: "&(executable=/bin/date)(arguments=-u \"two words\")".to_string(),
                callback: true,
            },
            Request::Submit {
                rsl: "(info=memory)(format=xml)".to_string(),
                callback: false,
            },
            Request::Status { handle: handle() },
            Request::Cancel { handle: handle() },
            Request::Ping,
        ];
        for r in reqs {
            let xml = encode_request(&r);
            assert!(xml.contains(WS_NAMESPACE));
            assert_eq!(decode_request(&xml).unwrap(), r);
        }
    }

    #[test]
    fn reply_envelope_roundtrip() {
        let replies = [
            Reply::JobAccepted { handle: handle() },
            Reply::JobStatus {
                handle: handle(),
                state: JobStateCode::Done,
                exit_code: Some(0),
                output: "value: <ok> & done\n".to_string(),
            },
            Reply::JobStatus {
                handle: handle(),
                state: JobStateCode::Active,
                exit_code: None,
                output: String::new(),
            },
            Reply::InfoResult {
                body: "dn: kw=Memory\nMemory-total: 42\n".to_string(),
                record_count: 1,
            },
            Reply::Event {
                handle: handle(),
                state: JobStateCode::Failed,
            },
            Reply::Error {
                code: 31,
                message: "no such keyword <X>".to_string(),
            },
            Reply::Pong,
            Reply::Subscribed { id: 7, count: 2 },
            Reply::SubEnd {
                id: 7,
                code: 36,
                message: "subscriber fell behind".to_string(),
            },
        ];
        for r in replies {
            let xml = encode_reply(&r);
            assert_eq!(decode_reply(&xml).unwrap(), r, "{xml}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_request("<not-an-envelope/>").is_err());
        assert!(decode_request(&envelope("<unknown/>")).is_err());
        assert!(decode_reply("plain text").is_err());
        assert!(decode_request(&envelope("<submit callback=\"x\"></submit>")).is_err());
    }

    #[test]
    fn gateway_serves_info_and_jobs() {
        let world = start_default_service("ws-host.grid:0");
        let dispatcher = InfoGramDispatcher::new(
            std::sync::Arc::clone(world.service.engine()),
            std::sync::Arc::clone(world.service.info_service()),
        );
        let gateway = WsGateway::start(
            dispatcher,
            "/O=Grid/OU=WS/CN=Gateway",
            "gregor",
            &world.net,
            "ws-host.grid:8080",
        )
        .unwrap();
        let mut client = WsClient::connect(&world.net, gateway.addr()).unwrap();

        // Ping.
        assert_eq!(client.call(&Request::Ping).unwrap(), Reply::Pong);

        // Info query through the WS syntax.
        match client
            .call(&Request::Submit {
                rsl: "(info=memory)".to_string(),
                callback: false,
            })
            .unwrap()
        {
            Reply::InfoResult { record_count, body } => {
                assert_eq!(record_count, 1);
                assert!(body.contains("Memory-total"));
            }
            other => panic!("{other:?}"),
        }

        // Job through the WS syntax.
        let handle = match client
            .call(&Request::Submit {
                rsl: "(executable=simwork)(arguments=10)".to_string(),
                callback: false,
            })
            .unwrap()
        {
            Reply::JobAccepted { handle } => handle,
            other => panic!("{other:?}"),
        };
        // Poll until done.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match client
                .call(&Request::Status {
                    handle: handle.clone(),
                })
                .unwrap()
            {
                Reply::JobStatus { state, .. } if state.is_terminal() => {
                    assert_eq!(state, JobStateCode::Done);
                    break;
                }
                Reply::JobStatus { .. } => {
                    assert!(std::time::Instant::now() < deadline, "job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                other => panic!("{other:?}"),
            }
        }

        // The job is ALSO visible over the native protocol: one service,
        // two syntaxes.
        let mut native = infogram_client::InfoGramClient::connect(
            &world.net,
            world.service.addr(),
            &world.user,
            &world.roots,
            world.clock.clone(),
        )
        .unwrap();
        let (state, exit, _) = native.status(&handle).unwrap();
        assert_eq!(state, JobStateCode::Done);
        assert_eq!(exit, Some(0));

        gateway.shutdown();
        world.service.shutdown();
    }
}
