//! MDS backwards compatibility.
//!
//! §6.6: "this information service can easily be integrated into the
//! Globus MDS information service architecture" — and §11: "we provide
//! the possibility of being protocol compatible to the Globus Toolkit,
//! while being able to integrate our information provider in the existent
//! MDS."
//!
//! The bridge publishes an InfoGram service's information through a GRIS
//! (optionally registered into a GIIS), so legacy LDAP-speaking clients
//! see exactly the attributes InfoGram serves natively — the "gradual
//! transition" path.

use crate::service::InfoGramService;
use infogram_mds::giis::Giis;
use infogram_mds::gris::Gris;
use std::sync::Arc;

/// Expose an InfoGram service's information half as a GRIS.
pub fn as_gris(service: &InfoGramService) -> Arc<Gris> {
    Gris::new(Arc::clone(service.info_service()))
}

/// Register an InfoGram service into a GIIS aggregate; returns the GRIS
/// that now represents it there.
pub fn register_into(service: &InfoGramService, giis: &Giis) -> Arc<Gris> {
    let gris = as_gris(service);
    giis.register(Arc::clone(&gris));
    gris
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests_support::start_default_service;
    use infogram_mds::filter::Filter;
    use infogram_sim::SystemClock;
    use std::time::Duration;

    #[test]
    fn gris_sees_infogram_attributes() {
        let world = start_default_service("bridge-host.grid:0");
        let gris = as_gris(&world.service);
        let entries = gris.search_all(&Filter::parse("(kw=Memory)").unwrap());
        assert_eq!(entries.len(), 1);
        // The MDS view carries the same value the native path serves.
        let mds_total = entries[0].first("Memory-total").unwrap();
        let native = world
            .service
            .info_service()
            .answer(
                &[infogram_rsl::InfoSelector::Keyword("Memory".to_string())],
                &Default::default(),
            )
            .unwrap();
        let native_total = native[0].get("Memory:total").unwrap().value.clone();
        assert_eq!(mds_total, native_total);
        world.service.shutdown();
    }

    #[test]
    fn giis_registration() {
        let world = start_default_service("bridge-host2.grid:0");
        let giis = Giis::new(SystemClock::shared(), Duration::from_secs(30));
        register_into(&world.service, &giis);
        assert_eq!(giis.member_count(), 1);
        let found = giis.search_all(&Filter::parse("(objectclass=GridResource)").unwrap());
        assert_eq!(found.len(), 1);
        world.service.shutdown();
    }
}
