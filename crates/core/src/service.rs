//! Assembly of the InfoGram service.
//!
//! Figure 3 of the paper, as one constructor: gatekeeper (GSI
//! authentication + gridmap/contract authorization), logging service,
//! job manager with its backends, the system monitor + system information
//! service pair, and the single client protocol over one port.

use crate::dispatch::InfoGramDispatcher;
use infogram_exec::backend::{ForkBackend, JarletBackend, QueueBackend};
use infogram_exec::engine::{EngineConfig, JobEngine};
use infogram_exec::gram::GramServer;
use infogram_exec::sandbox::{ExecMode, Policy};
use infogram_exec::wal::{accounting_summary, AccountUsage, Wal};
use infogram_gsi::{Authorizer, Certificate, Credential};
use infogram_host::commands::CommandRegistry;
use infogram_host::machine::SimulatedHost;
use infogram_host::queue::BatchQueue;
use infogram_info::config::{SchedConfig, ServiceConfig};
use infogram_info::service::InformationService;
use infogram_info::{RefreshScheduler, SubscriptionHub, JOBS_KEYWORD};
use infogram_proto::transport::{ProtoError, Transport};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::MetricSet;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Construction parameters for an InfoGram service.
pub struct InfoGramParams {
    /// Resource name used by authorization contracts.
    pub service_name: String,
    /// Bind address, e.g. `"node00.grid:2119"` or `"node00.grid:0"`.
    pub bind_addr: String,
    /// The keyword configuration (Table 1 format).
    pub config: ServiceConfig,
    /// Sandbox policy for untrusted jarlet jobs.
    pub sandbox_policy: Policy,
    /// Sandbox execution mode (the two "JVM" modes of §7).
    pub sandbox_mode: ExecMode,
    /// Service credential presented to clients.
    pub credential: Credential,
    /// Trusted CA certificates.
    pub trust_roots: Vec<Certificate>,
    /// Gridmap (+ optional contracts) policy.
    pub authorizer: Arc<Authorizer>,
}

/// A running InfoGram service: one port, both behaviours.
pub struct InfoGramService {
    server: Arc<GramServer>,
    info: Arc<InformationService>,
    engine: Arc<JobEngine>,
    registry: Arc<CommandRegistry>,
    hub: Arc<SubscriptionHub>,
    sched: Arc<RefreshScheduler>,
    driver_running: Arc<AtomicBool>,
    driver: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for InfoGramService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InfoGramService")
            .field("addr", &self.server.addr())
            .finish_non_exhaustive()
    }
}

impl InfoGramService {
    /// Start the service on a host. `wal` may be file-backed to survive
    /// restarts; pass named batch queues for `(jobtype=batch)` support.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        params: InfoGramParams,
        registry: Arc<CommandRegistry>,
        queues: Vec<(String, Arc<dyn BatchQueue>)>,
        wal: Wal,
        transport: &dyn Transport,
        clock: SharedClock,
        metrics: MetricSet,
    ) -> Result<Arc<Self>, ProtoError> {
        let host: Arc<SimulatedHost> = Arc::clone(registry.host());
        let info = InformationService::from_config(
            &params.config,
            Arc::clone(&registry),
            clock.clone(),
            metrics.clone(),
        );
        // The built-in self-describing keyword: `(info=metrics)` answers
        // with a live snapshot of the telemetry handle every layer of
        // this service writes into.
        info.register_metrics_provider(metrics.clone());

        // Port for job handles: parse from the bind address when present.
        let (hostname, port) = match params.bind_addr.rsplit_once(':') {
            Some((h, p)) => (h.to_string(), p.parse().unwrap_or(0)),
            None => (params.bind_addr.clone(), 0),
        };
        let engine_config = EngineConfig {
            service_name: params.service_name.clone(),
            hostname,
            port,
        };
        let engine = JobEngine::new(
            engine_config,
            clock.clone(),
            wal,
            ForkBackend::new(Arc::clone(&registry)),
            metrics.clone(),
        )
        .with_jarlet(JarletBackend::new(
            Arc::clone(&host),
            params.sandbox_policy.clone(),
            params.sandbox_mode,
        ));
        for (name, queue) in queues {
            engine.add_queue(
                &name,
                QueueBackend::new(&name, queue, Arc::clone(&registry)),
            );
        }
        // §7 I/O redirection lands on the service host's filesystem.
        engine.set_stdio_host(Arc::clone(&host));
        // Restart-from-log: resubmit whatever the previous incarnation
        // left unfinished (§6, §10 "automatic restart capabilities").
        engine.recover();

        let dispatcher = InfoGramDispatcher::new(Arc::clone(&engine), Arc::clone(&info));

        // ---- persistent-query plumbing: scheduler + subscription hub ----
        // The wheel starts EMPTY: keywords join it when a subscription
        // names them (a subscription is standing demand), so a service
        // nobody subscribes to refreshes nothing in the background and
        // on-demand query behaviour is exactly as before.
        let hub = Arc::clone(dispatcher.hub());
        let sched = RefreshScheduler::new(clock.clone(), SchedConfig::default(), metrics.clone());
        sched.set_hub(Arc::clone(&hub));
        dispatcher.set_scheduler(Arc::clone(&sched));
        let driver_running = Arc::new(AtomicBool::new(true));
        let driver = {
            let sched = Arc::clone(&sched);
            let hub = Arc::clone(&hub);
            let engine = Arc::clone(&engine);
            let running = Arc::clone(&driver_running);
            let clock = clock.clone();
            // lint:allow(thread-spawn) — long-lived refresh driver, not a
            // fan-out: it outlives any scope sim::par could provide and is
            // joined explicitly on shutdown.
            std::thread::spawn(move || {
                while running.load(Ordering::SeqCst) {
                    // Job state is otherwise pulled lazily by status
                    // queries; a `jobs` subscription is standing demand
                    // for every transition, so poll on its behalf.
                    if hub.has_subscribers(JOBS_KEYWORD) {
                        engine.poll_active();
                    }
                    sched.tick();
                    // Nap toward the next wheel deadline, bounded so
                    // shutdown stays prompt and an empty wheel does not
                    // spin.
                    let nap = sched
                        .next_deadline()
                        .map(|d| d.since(clock.now()))
                        .unwrap_or(Duration::from_millis(25));
                    let nap = nap.clamp(Duration::from_millis(1), Duration::from_millis(25));
                    std::thread::sleep(nap);
                }
            })
        };

        let server = GramServer::start(
            Arc::clone(&engine),
            dispatcher,
            transport,
            &params.bind_addr,
            params.credential,
            params.trust_roots,
            params.authorizer,
            clock,
        )?;
        Ok(Arc::new(InfoGramService {
            server,
            info,
            engine,
            registry,
            hub,
            sched,
            driver_running,
            driver: Mutex::new(Some(driver)),
        }))
    }

    /// The bound address.
    pub fn addr(&self) -> &str {
        self.server.addr()
    }

    /// The unified service's information half.
    pub fn info_service(&self) -> &Arc<InformationService> {
        &self.info
    }

    /// The unified service's execution half.
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    /// The host this service runs on.
    pub fn host(&self) -> &Arc<SimulatedHost> {
        self.registry.host()
    }

    /// The command registry behind the providers and the fork backend.
    pub fn registry(&self) -> &Arc<CommandRegistry> {
        &self.registry
    }

    /// Simple grid accounting from the logging service (§6).
    pub fn accounting(&self) -> BTreeMap<String, AccountUsage> {
        accounting_summary(&self.engine.wal_events())
    }

    /// The `(action=subscribe)` index: live subscription count, keyword
    /// channel versions.
    pub fn subscriptions(&self) -> &Arc<SubscriptionHub> {
        &self.hub
    }

    /// The refresh scheduler driving subscribed keywords.
    pub fn scheduler(&self) -> &Arc<RefreshScheduler> {
        &self.sched
    }

    /// Stop accepting connections and park the refresh driver.
    pub fn shutdown(&self) {
        self.driver_running.store(false, Ordering::SeqCst);
        if let Some(t) = self.driver.lock().take() {
            let _ = t.join();
        }
        self.server.shutdown();
    }
}

/// Shared fixture used by this crate's tests (and re-used by the bridge
/// tests): a default host, a one-user PKI, and a started service on an
/// ideal in-memory network.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use infogram_gsi::{CertificateAuthority, Dn, GridMap};
    use infogram_host::commands::ChargeMode;
    use infogram_host::machine::SimulatedHost;
    use infogram_proto::transport::mem::MemNetwork;
    use infogram_sim::{SimTime, SplitMix64, SystemClock};
    use std::time::Duration;

    /// Everything a wire-level test needs.
    pub struct TestWorld {
        /// The shared clock.
        pub clock: SharedClock,
        /// The in-memory network.
        pub net: Arc<MemNetwork>,
        /// The running service.
        pub service: Arc<InfoGramService>,
        /// A mapped user credential.
        pub user: Credential,
        /// Trust anchors.
        pub roots: Vec<Certificate>,
    }

    /// Start a default InfoGram service bound at `addr`.
    pub fn start_default_service(addr: &str) -> TestWorld {
        let clock: SharedClock = SystemClock::shared();
        let mut rng = SplitMix64::new(2002);
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Root"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(365 * 86_400),
        );
        let user = ca.issue(
            &Dn::user("Grid", "ANL", "Gregor"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let service_cred = ca.issue(
            &Dn::user("Grid", "Hosts", "infogram.grid"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = vec![ca.certificate().clone()];
        let mut gridmap = GridMap::new();
        gridmap.add(Dn::user("Grid", "ANL", "Gregor"), &["gregor"]);
        let authorizer = Arc::new(Authorizer::gridmap_only(gridmap));

        let host = SimulatedHost::default_on(clock.clone());
        let registry = CommandRegistry::new(host, ChargeMode::None);
        let net = MemNetwork::ideal();
        let service = InfoGramService::start(
            InfoGramParams {
                service_name: "infogram".to_string(),
                bind_addr: addr.to_string(),
                config: ServiceConfig::table1(),
                sandbox_policy: Policy::restrictive(),
                sandbox_mode: ExecMode::Isolated,
                credential: service_cred,
                trust_roots: roots.clone(),
                authorizer,
            },
            registry,
            vec![],
            Wal::in_memory(),
            &net,
            clock.clone(),
            MetricSet::new(),
        )
        .expect("service starts");
        TestWorld {
            clock,
            net,
            service,
            user,
            roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::start_default_service;
    use infogram_rsl::InfoSelector;

    #[test]
    fn service_starts_and_binds() {
        let w = start_default_service("svc.grid:0");
        assert!(w.service.addr().starts_with("svc.grid:"));
        assert_eq!(w.service.engine().epoch(), 1);
        w.service.shutdown();
    }

    #[test]
    fn info_and_engine_share_the_host() {
        let w = start_default_service("svc2.grid:0");
        assert_eq!(
            w.service.info_service().hostname(),
            w.service.host().hostname()
        );
        w.service.shutdown();
    }

    #[test]
    fn accounting_reflects_engine_activity() {
        let w = start_default_service("svc3.grid:0");
        let req =
            infogram_rsl::XrslRequest::from_text("(executable=simwork)(arguments=1)").unwrap();
        w.service
            .engine()
            .submit(
                "(executable=simwork)(arguments=1)",
                req.job.unwrap(),
                "/O=Grid/CN=G",
                "gregor",
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        w.service.engine().status(1);
        let summary = w.service.accounting();
        assert_eq!(summary["gregor"].submitted, 1);
        w.service.shutdown();
    }

    #[test]
    fn native_info_available_immediately() {
        let w = start_default_service("svc4.grid:0");
        let recs = w
            .service
            .info_service()
            .answer(
                &[InfoSelector::Keyword("Date".to_string())],
                &Default::default(),
            )
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].get("value").unwrap().value.contains("2002"));
        w.service.shutdown();
    }
}
