//! Grid accounting report.
//!
//! §6: "We intend to use this logging service to provide simple Grid
//! accounting." The raw summary lives in `infogram_exec::wal`; this
//! module adds the human-readable report the examples print.

use infogram_exec::wal::AccountUsage;
use std::collections::BTreeMap;

/// Render an accounting summary as an aligned text table.
pub fn render_report(summary: &BTreeMap<String, AccountUsage>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>9} {:>10} {:>7} {:>12} {:>12}\n",
        "account", "submitted", "completed", "failed", "wall-seconds", "info-queries"
    ));
    for (account, usage) in summary {
        out.push_str(&format!(
            "{:<16} {:>9} {:>10} {:>7} {:>12.3} {:>12}\n",
            account,
            usage.submitted,
            usage.completed,
            usage.failed,
            usage.wall_seconds,
            usage.info_queries
        ));
    }
    if summary.is_empty() {
        out.push_str("(no jobs logged)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_per_account() {
        let mut summary = BTreeMap::new();
        summary.insert(
            "gregor".to_string(),
            AccountUsage {
                submitted: 3,
                completed: 2,
                failed: 1,
                wall_seconds: 12.5,
                info_queries: 7,
            },
        );
        let report = render_report(&summary);
        assert!(report.contains("account"));
        assert!(report.contains("gregor"));
        assert!(report.contains("12.500"));
        assert!(report.contains("info-queries"));
        assert_eq!(report.lines().count(), 2);
    }

    #[test]
    fn empty_report() {
        let report = render_report(&BTreeMap::new());
        assert!(report.contains("no jobs logged"));
    }
}
