#![warn(missing_docs)]

//! InfoGram: the unified information + job-execution grid service.
//!
//! The paper's contribution (§1, §6): the Globus Toolkit ran two separate
//! services — GRAM for jobs, MDS for information — "with different wire
//! protocols", and "this complexity can be reduced significantly" because
//! both are "a query formulated and submitted to a server followed by a
//! stream of information that returns the result based on the query."
//!
//! InfoGram is one gatekeeper, one port, one protocol: an xRSL
//! specification either submits a job (`(executable=...)`) or queries
//! information (`(info=...)`), and everything else — GSI authentication,
//! gridmap/contract authorization, logging and restart, callbacks —
//! is shared.
//!
//! * [`dispatch`] — the unified request dispatcher that tells the two
//!   request kinds apart and applies the xRSL extension tags (`response`,
//!   `quality`, `performance`, `format`, `filter`).
//! * [`service`] — assembly: host + providers + engine + gatekeeper in
//!   one [`service::InfoGramService`], with restart-from-log.
//! * [`mds_bridge`] — backwards compatibility: expose the same
//!   information through a GRIS/GIIS so existing MDS clients keep working
//!   ("we provide the option to move to a different Information provider
//!   while enabling a gradual transition").
//! * [`accounting`] — the simple grid accounting derived from the
//!   logging service.
//! * [`ws`] — the forwards-compatibility story (§6.6/§10): the same
//!   dispatcher exposed through a SOAP-shaped XML envelope, the "second
//!   step" the paper left to OGSA.

pub mod accounting;
pub mod dispatch;
pub mod mds_bridge;
pub mod service;
pub mod ws;

pub use dispatch::InfoGramDispatcher;
pub use service::{InfoGramParams, InfoGramService};
pub use ws::{WsClient, WsGateway};
