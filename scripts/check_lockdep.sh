#!/bin/sh
# Lock-order and blocking-section analysis sweep (sim::lockdep).
#
# Lockdep rides inside the instrumented parking_lot shim: every Mutex /
# RwLock acquisition feeds a per-thread held-stack and a process-global
# acquisition-order graph, and violations print as `LOCKDEP: ...` lines
# on stderr the moment the closing edge is recorded — no hang needed.
#
# This script runs the lockdep-focused suites with the analyzer forced
# on (INFOGRAM_LOCKDEP=1, so the sweep also guards release-profile CI
# where debug_assertions are off) and fails on any LOCKDEP line:
#
#   - tests/lockdep.rs — the analyzer's own acceptance tests (cycle
#     detection, guard-across-blocking, held-at-exit, and the seeded
#     SubscriptionHub inversion). These capture their reports, so a
#     *seeded* violation is asserted on rather than printed.
#   - tests/push_sub.rs and tests/refresh_sched.rs — the two most
#     lock-heavy integration suites (delivery fan-out, scheduler wheel,
#     eviction under ticks) run as zero-finding sweeps.
#   - the workspace unit/integration default gate, same condition.
#
# `--nocapture` matters: the libtest harness swallows stderr of passing
# tests, which would hide findings from exactly the runs that matter.

set -eu

cd "$(dirname "$0")/.."

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

run() {
    desc="$1"
    shift
    echo "==> lockdep sweep: ${desc}"
    INFOGRAM_LOCKDEP=1 "$@" -- --nocapture >"$LOG" 2>&1 || {
        cat "$LOG"
        echo "lockdep sweep: '${desc}' failed" >&2
        exit 1
    }
    if grep "^LOCKDEP:" "$LOG"; then
        echo "lockdep sweep: findings in '${desc}' (see above)" >&2
        exit 1
    fi
}

run "tests/lockdep.rs (acceptance)" cargo test -q -p infogram --test lockdep
run "tests/push_sub.rs" cargo test -q -p infogram --test push_sub
run "tests/refresh_sched.rs" cargo test -q -p infogram --test refresh_sched
run "workspace suites" cargo test -q --workspace

# The examples drive the full sandbox stack over the real wire and
# exercise service paths the unit suites do not (the first sweep of
# them caught a jobs-lock-across-outbox-send hold that every test
# missed). No `--nocapture` dance needed: examples own their stderr.
for ex in quickstart metrics scheduler sporadic_grid subscribe \
          untrusted_jobs vo_monitor ws_gateway; do
    echo "==> lockdep sweep: example ${ex}"
    INFOGRAM_LOCKDEP=1 cargo run -q --example "$ex" >"$LOG" 2>&1 || {
        cat "$LOG"
        echo "lockdep sweep: example '${ex}' failed" >&2
        exit 1
    }
    if grep "^LOCKDEP:" "$LOG"; then
        echo "lockdep sweep: findings in example '${ex}' (see above)" >&2
        exit 1
    fi
done

echo "==> lockdep: zero findings"
