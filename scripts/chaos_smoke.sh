#!/bin/sh
# Chaos smoke: the full sandbox under a randomized-but-seeded fault
# storm (examples/chaos.rs).
#
# Each run draws a fresh storm seed (printed up front), hammers the
# service through a real client while 10% of provider executions fail
# and the WAL's disk throws its own seeded faults (failed appends,
# short writes, failed fsyncs — submissions refused UNAVAILABLE while
# the log is read-only must land on retry), and asserts zero panics
# plus a bounded query-error rate. To replay a failing run exactly:
#
#   SEED=<printed seed> scripts/chaos_smoke.sh
#
# ROUNDS=<n> scales the run length (default 40 rounds x 5 keywords).

set -eu

cd "$(dirname "$0")/.."

echo "==> chaos smoke (examples/chaos.rs)"
cargo run -q --release --example chaos

echo "==> chaos smoke ok"
