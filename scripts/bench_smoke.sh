#!/bin/sh
# Smoke-run the scatter-gather benchmark (E16) and gate on its pass flag.
#
# Runs `e16_parallel_fanout` in quick mode (3 rounds per K, 20k hit-path
# queries — a few seconds total) and writes the machine-readable result
# to BENCH_parallel_fanout.json at the repo root. The bench asserts its
# own acceptance criterion — `(info=all)` over 4 slow keywords within
# 1.5x of one provider's cost — and exits non-zero if the fan-out pool
# ever regresses to sequential behaviour, so this doubles as a CI gate.

set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_parallel_fanout.json}"

# `cargo bench` runs the binary from the package directory, so anchor
# the output path at the repo root regardless.
echo "==> e16_parallel_fanout (quick) -> $OUT"
E16_QUICK=1 E16_JSON="$(pwd)/$OUT" cargo bench -q -p infogram-bench \
    --bench e16_parallel_fanout

grep -q '"pass": true' "$OUT" || {
    echo "bench smoke FAILED: $OUT does not report pass=true" >&2
    exit 1
}
echo "==> bench smoke ok ($OUT)"
