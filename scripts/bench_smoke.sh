#!/bin/sh
# Smoke-run the acceptance-gated benchmarks and gate on their pass flags.
#
#   - e16_parallel_fanout (quick: 3 rounds per K, 20k hit-path queries)
#     writes BENCH_parallel_fanout.json; asserts `(info=all)` over 4
#     slow keywords stays within 1.5x of one provider's cost.
#   - e17_fault_storm (quick: 400 rounds) writes BENCH_fault_storm.json;
#     asserts >=99% availability under a seeded 10% provider-failure
#     storm and byte-identical replay from the seed.
#   - e18_refresh_sched (quick: 600 rounds) writes
#     BENCH_refresh_sched.json; asserts a >=99.9% hit rate at steady
#     load with strictly fewer provider executions than TTL-expiry
#     polling, cold keywords skipped, and byte-identical replay.
#   - e19_push_sub (quick: 10k subscriptions) writes
#     BENCH_push_sub.json; asserts every subscriber receives every
#     version of its keyword exactly once in order (zero missed
#     updates) with bounded p99 per-subscriber fan-out cost.
#
# Each bench asserts its own acceptance criterion and exits non-zero on
# regression, so this doubles as a CI gate. A few seconds total.

set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_parallel_fanout.json}"

# `cargo bench` runs the binary from the package directory, so anchor
# the output path at the repo root regardless.
echo "==> e16_parallel_fanout (quick) -> $OUT"
E16_QUICK=1 E16_JSON="$(pwd)/$OUT" cargo bench -q -p infogram-bench \
    --bench e16_parallel_fanout

grep -q '"pass": true' "$OUT" || {
    echo "bench smoke FAILED: $OUT does not report pass=true" >&2
    exit 1
}

STORM_OUT="${BENCH_STORM_OUT:-BENCH_fault_storm.json}"

echo "==> e17_fault_storm (quick) -> $STORM_OUT"
E17_QUICK=1 E17_JSON="$(pwd)/$STORM_OUT" cargo bench -q -p infogram-bench \
    --bench e17_fault_storm

grep -q '"pass": true' "$STORM_OUT" || {
    echo "bench smoke FAILED: $STORM_OUT does not report pass=true" >&2
    exit 1
}

SCHED_OUT="${BENCH_SCHED_OUT:-BENCH_refresh_sched.json}"

echo "==> e18_refresh_sched (quick) -> $SCHED_OUT"
E18_QUICK=1 E18_JSON="$(pwd)/$SCHED_OUT" cargo bench -q -p infogram-bench \
    --bench e18_refresh_sched

grep -q '"pass": true' "$SCHED_OUT" || {
    echo "bench smoke FAILED: $SCHED_OUT does not report pass=true" >&2
    exit 1
}

SUB_OUT="${BENCH_SUB_OUT:-BENCH_push_sub.json}"

echo "==> e19_push_sub (quick) -> $SUB_OUT"
E19_QUICK=1 E19_JSON="$(pwd)/$SUB_OUT" cargo bench -q -p infogram-bench \
    --bench e19_push_sub

grep -q '"pass": true' "$SUB_OUT" || {
    echo "bench smoke FAILED: $SUB_OUT does not report pass=true" >&2
    exit 1
}

echo "==> bench smoke ok ($OUT, $STORM_OUT, $SCHED_OUT, $SUB_OUT)"
