#!/bin/sh
# Crash-consistency gate: the restart-recovery and crash-storm suites,
# with disk-fault injection (sim::fault::DiskFaultPlan) forced on where
# the scenario calls for a misbehaving disk.
#
#   - tests/restart_recovery.rs — kill a service with jobs in flight,
#     restart a new incarnation over the same file-backed WAL: jobs
#     recovered, outcomes kept, accounting intact, epoch advanced.
#   - tests/wal_crash.rs — the frame-format contract: truncation at
#     every byte prefix recovers exactly the contained frames, a flip
#     of any single byte never invents history, a full disk surfaces
#     UNAVAILABLE + retry-after-ms on the wire (then heals), and
#     recovery damage shows up in (info=metrics).
#   - e20_crash_storm (quick) — a seeded disk-fault storm with a
#     mid-storm power loss; writes BENCH_crash_storm.json and gates on
#     its pass flag: zero acked-submission loss, zero resurrected
#     finished jobs, checkpoint + bounded-tail replay, honest
#     degradation, byte-identical replay from the seed.
#
# (The group-commit schedule exploration lives in tests/model_wal.rs,
# run by scripts/check_model.sh.)

set -eu

cd "$(dirname "$0")/.."

echo "==> crash suite: tests/restart_recovery.rs"
cargo test --test restart_recovery -q

echo "==> crash suite: tests/wal_crash.rs"
cargo test --test wal_crash -q

CRASH_OUT="${BENCH_CRASH_OUT:-BENCH_crash_storm.json}"

echo "==> e20_crash_storm (quick) -> $CRASH_OUT"
E20_QUICK=1 E20_JSON="$(pwd)/$CRASH_OUT" cargo bench -q -p infogram-bench \
    --bench e20_crash_storm

grep -q '"pass": true' "$CRASH_OUT" || {
    echo "crash gate FAILED: $CRASH_OUT does not report pass=true" >&2
    exit 1
}

echo "==> crash gate ok ($CRASH_OUT)"
