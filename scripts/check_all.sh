#!/bin/sh
# The full local gate, in dependency order:
#
#   1. cargo fmt --check — formatting drift fails fast
#   2. infogram-lint — the workspace's own token-oriented lint pass
#      (clock discipline, unwrap policy, guard-across-call, config
#      table markers); see crates/lint
#   3. scripts/check_docs.sh — rustdoc + clippy, warnings as errors
#   4. cargo test --workspace — every unit, doc, and integration test
#   5. scripts/check_lockdep.sh — lock-order / blocking-section sweep:
#      the key suites re-run with sim::lockdep forced on, failing on
#      any LOCKDEP finding
#   6. scripts/check_model.sh — bounded schedule-exploration model
#      checking of the concurrency core (seconds; EXHAUSTIVE=1 for the
#      unbounded sweep)
#   7. scripts/check_crash.sh — crash consistency: restart-recovery
#      and WAL crash-point suites plus the quick E20 crash storm under
#      injected disk faults (writes BENCH_crash_storm.json)
#   8. scripts/bench_smoke.sh — quick E16 + E17 + E18 + E19 runs
#      gating on the fan-out, fault-storm, refresh-scheduler and
#      push-subscription acceptance criteria (writes
#      BENCH_parallel_fanout.json, BENCH_fault_storm.json,
#      BENCH_refresh_sched.json and BENCH_push_sub.json)
#   9. scripts/chaos_smoke.sh — the full sandbox under a seeded random
#      fault + disk-fault storm: zero panics, bounded error rate,
#      replayable seed
#
# Works fully offline; expect a few minutes on a cold target dir.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> infogram-lint"
cargo run -q -p infogram-lint --

sh scripts/check_docs.sh

echo "==> cargo test --workspace"
cargo test --workspace -q

sh scripts/check_lockdep.sh

sh scripts/check_model.sh

sh scripts/check_crash.sh

sh scripts/bench_smoke.sh

sh scripts/chaos_smoke.sh

echo "==> all gates green"
