#!/bin/sh
# The full local gate, in dependency order:
#
#   1. scripts/check_docs.sh — rustdoc + clippy, warnings as errors
#   2. cargo test --workspace — every unit, doc, and integration test
#   3. scripts/bench_smoke.sh — quick E16 run gating on the fan-out
#      acceptance criterion (writes BENCH_parallel_fanout.json)
#
# Works fully offline; expect a few minutes on a cold target dir.

set -eu

cd "$(dirname "$0")/.."

sh scripts/check_docs.sh

echo "==> cargo test --workspace"
cargo test --workspace -q

sh scripts/bench_smoke.sh

echo "==> all gates green"
