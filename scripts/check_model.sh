#!/bin/sh
# Schedule-exploration model checking for the concurrency core.
#
# Runs the feature-gated model test suites:
#
#   - infogram-sim's sim::model unit tests (the explorer checking
#     itself: seeded races, deadlocks, condvar handoffs, clock
#     auto-advance, fan-out under the model, replayability)
#   - tests/model_concurrency.rs (the InfoGram invariants: coalescing
#     generation, the seeded stale-waiter regression, throttle delay,
#     COW registry)
#   - tests/model_fault.rs (the fault-domain supervisor: half-open
#     probe exclusivity with a seeded check-then-act regression,
#     breaker transitions under racing failures, stale-serve honesty)
#   - tests/model_sched.rs (the refresh scheduler: no lost wakeups /
#     no double-enqueue with a seeded epoch-check regression, no
#     refresh storm under concurrent ticks, breaker-open keywords
#     park instead of busy-looping)
#   - tests/model_sub.rs (the push-subscription delivery pipeline: a
#     seeded outbox check-then-act overcommit regression, exactly-once
#     in-order fan-out under concurrent notifies, a joiner racing a
#     notify always starts from a snapshot, eviction under a scheduler
#     tick never deadlocks against a joining subscriber)
#   - tests/model_wal.rs (the WAL group-commit protocol: a seeded
#     ack-before-durable leader regression, the shipped Wal never
#     acks a commit before its bytes are fsynced and never loses a
#     ticket under racing submitters, fsync-failure honesty)
#
# plus clippy over the `model` feature configuration, which the default
# gate never compiles.
#
# Bounds: by default explorations use a CHESS-style preemption bound of
# 2 and a 4000-execution budget per scenario — seconds of wall time.
#
#   EXHAUSTIVE=1 scripts/check_model.sh
#
# lifts the preemption bound and raises the budget to 200k executions
# per scenario (still well under a minute on this suite). Fine-grained
# knobs: MODEL_MAX_EXECUTIONS, MODEL_PREEMPTION_BOUND.

set -eu

cd "$(dirname "$0")/.."

MODE=bounded
if [ "${EXHAUSTIVE:-0}" = "1" ]; then
    MODE=exhaustive
fi

echo "==> cargo clippy (--features model) -- -D warnings"
cargo clippy -p infogram-sim -p infogram --all-targets --features model -- -D warnings

echo "==> model suite: infogram-sim (${MODE})"
cargo test -p infogram-sim --features model -q

echo "==> model suite: tests/model_concurrency.rs (${MODE})"
cargo test -p infogram --features model --test model_concurrency -q

echo "==> model suite: tests/model_fault.rs (${MODE})"
cargo test -p infogram --features model --test model_fault -q

echo "==> model suite: tests/model_sched.rs (${MODE})"
cargo test -p infogram --features model --test model_sched -q

echo "==> model suite: tests/model_sub.rs (${MODE})"
cargo test -p infogram --features model --test model_sub -q

echo "==> model suite: tests/model_wal.rs (${MODE})"
cargo test -p infogram --features model --test model_wal -q

echo "==> model checking green (${MODE})"
