#!/bin/sh
# Documentation and lint gate for the workspace.
#
# - `cargo doc` with rustdoc warnings promoted to errors: catches missing
#   docs on public items (core, info and obs build with
#   `#![warn(missing_docs)]`) and broken intra-doc links everywhere.
# - `cargo test --doc`: the runnable examples embedded in the API docs
#   (e.g. `sim::par::fan_out`, `sim::timer::TimerWheel`,
#   `info::entry::Snapshot`) must compile and pass.
# - `cargo clippy -D warnings`: the workspace is expected to be
#   clippy-clean.
#
# Works fully offline — all external dependencies are vendored under
# shims/ (see shims/README.md), so no registry access is needed.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --workspace --no-deps

echo "==> cargo test --workspace --doc"
cargo test --workspace --doc -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> docs and lints clean"
