#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from a captured `cargo bench --workspace` run.

Each experiment bench prints a banner block; this script slices those
blocks out of bench_output.txt and wraps them with the paper-vs-measured
commentary. Re-run after any bench change:

    cargo bench --workspace 2>&1 | tee bench_output.txt
    python3 scripts/gen_experiments.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RAW = (ROOT / "bench_output.txt").read_text()

# Split the raw output into banner-delimited experiment blocks keyed by id.
# A banner is a 4-line unit:
#     ================...
#     <ID>: <title>
#     expected shape: ...
#     ================...
lines = RAW.splitlines()
id_re = re.compile(r"^[A-Z][A-Z0-9]*: ")
starts = [
    k
    for k in range(len(lines) - 3)
    if lines[k].startswith("====")
    and id_re.match(lines[k + 1])
    and lines[k + 3].startswith("====")
]
NOISE_PREFIXES = (
    "     Running ",
    "   Compiling ",
    "    Finished ",
    "Gnuplot not found",
    "Benchmarking",
    "running ",
    "test result",
)
blocks = {}
for idx, k in enumerate(starts):
    end = starts[idx + 1] if idx + 1 < len(starts) else len(lines)
    exp_id = lines[k + 1].split(":", 1)[0].strip()
    body = []
    for line in lines[k:end]:
        if line.startswith(NOISE_PREFIXES):
            break
        body.append(line)
    blocks[exp_id] = "\n".join(body).rstrip()

ORDER = [
    ("T1", "Table 1 — the configuration file, executed",
     "Paper artifact: Table 1 lists the literal `(TTL, keyword, command)` rows. "
     "The paper asserts the semantics in prose (`0 specifies execution of the "
     "keyword every time it is requested`); it reports no measurements.",
     "The literal five rows, driven by a fixed 200-query schedule at 10 ms "
     "spacing on the virtual clock. Hit ratio tracks TTL exactly (TTL T ⇒ "
     "~1 execution per T/10 ms of queries); the TTL=0 CPULoad row executes on "
     "all 200 queries. The table's semantics hold as specified."),
    ("F1", "Figure 1 — GRAM three-tier architecture",
     "Paper artifact: an architecture diagram (client tier → gatekeeper/job "
     "manager → local execution); no measurements.",
     "Measured as a per-tier latency breakdown over 40 jobs. The backend tier "
     "(the job's own 20 ms runtime) dominates; gatekeeper cost (GSI handshake "
     "+ gridmap) is paid once per connection; job-manager operations are tens "
     "of microseconds. This is the cost structure the unification argument "
     "relies on: the per-connection column is what Figure 4 halves."),
    ("F2", "Figure 2 — the baseline: separate GRAM + MDS",
     "Paper artifact: a diagram showing a client forced to contact two "
     "services over two protocols; the paper's complaint is qualitative "
     "(`not only do the services operate through different ports, but they "
     "also use different protocols`).",
     "Measured: a closed-loop 50/50 info/jobs workload against the separate "
     "services. Connections = 2 x clients (one GRAM, one MDS bind per "
     "client), two protocols on the wire, two GSI handshakes per client."),
    ("F3", "Figure 3 — the InfoGram architecture",
     "Paper artifact: the unified-architecture diagram (shaded additions to "
     "GRAM: logger, system monitor, system information service).",
     "Measured: the identical workload against the unified service. "
     "Connections = 1 x clients; one protocol; info queries travel as xRSL "
     "submits on the job connection. Mean latency is lower than the baseline "
     "mostly because the MDS path must refresh a whole GRIS subtree per "
     "search while the native path touches only the requested keyword."),
    ("F4", "Figure 4 — unified vs separate, head to head",
     "Paper artifact: `The new InfoGram service reduces the number of "
     "protocols and components in a Grid` — the headline claim, asserted "
     "structurally.",
     "Measured: the claim quantified across the job/info mix. The unified "
     "service does the same work with exactly half the connections and "
     "handshakes at every p_info, at equal-or-better latency. Byte volume "
     "is comparable (the unified LDIF bodies run larger at high info "
     "fractions because they carry the quality/age annotations the MDS "
     "view lacks). The structural table is Figure 2 vs Figure 4 in rows. "
     "**This is the paper's thesis, and it holds.**"),
    ("E5", "E5 — caching beats exec-per-request (§5.1)",
     "Paper claim: `it would be wasteful to execute the command requesting "
     "the load every single time. Instead, it can be more efficient to cache "
     "this value` — asserted, not measured.",
     "Measured: with 1000 polling clients, a 1 s TTL serves queries ~1000x "
     "faster than exec-per-request while backend executions drop from ~50/s "
     "to 1/s; the cost is bounded staleness (~TTL/2 mean). With one client "
     "and a TTL shorter than the polling gap the cache buys nothing — also "
     "the correct shape."),
    ("E6", "E6 — degradation functions and the quality threshold (§5.2/§6.4/§6.6)",
     "Paper claim: attaching a degradation function and a `quality` "
     "threshold lets clients trade refresh work for accuracy; the semantics "
     "are specified, no numbers given.",
     "Measured against a drifting AR(1) CPU load with ground truth "
     "available: refresh count and served accuracy both rise monotonically "
     "with the threshold (1 → 18 refreshes, error 0.34 → 0.17 over the "
     "sweep). Binary degradation is all-or-nothing while linear/exponential "
     "trade smoothly — the distinction §5.2 draws between its two cases."),
    ("E7", "E7 — response modes (§6.6)",
     "Paper claim: `immediate` executes regardless of TTL, `cached` serves "
     "if valid else refreshes, `last` returns the stored value without "
     "updating.",
     "Measured: 240 queries at 4 Hz against a 1 s TTL. `immediate` = 240 "
     "executions, `cached` = ~60 (one per TTL window), `last` = 0 with the "
     "served copy simply ageing. Latency orders exactly as the semantics "
     "imply: last < cached < immediate."),
    ("E8", "E8 — the performance tag (§6.6)",
     "Paper claim: `the performance tag returns the number of seconds and "
     "the standard deviation about how long it takes to obtain a particular "
     "information value`.",
     "Measured against commands with known cost distributions: after 300 "
     "catalogued executions the reported mean is within ~0.2% of truth and "
     "the reported σ tracks the configured dispersion across a 40x range of "
     "cost scales."),
    ("E9", "E9 — update monitors and the delay throttle (§6.2)",
     "Paper claim: `if multiple updateState methods are invoked, monitors "
     "are used to perform only one such update at a time`, plus a `delay` "
     "that rate-limits consecutive refreshes.",
     "Measured with real threads against a 30 ms provider: storms of up to "
     "32 concurrent updaters collapse to exactly 1 execution each (a 32x "
     "saving against the no-monitor baseline of one execution per caller); "
     "the delay gate caps executions at ~1 per delay window."),
    ("E10", "E10 — restart from the logging service (§6/§6.1/§10)",
     "Paper claim: `the log can be used to restart our InfoGRAM service in "
     "case it needs to be restarted`, and jobs restart automatically on "
     "failure.",
     "Measured: a service killed with up to 50 jobs in flight recovers all "
     "of them from a file-backed WAL in under ~10 ms, keeps terminal "
     "outcomes, and restarts each unfinished job from its logged xRSL (`the "
     "command used and arguments` — exactly what the paper says it logs). "
     "A failing job with retry budget N restarts exactly N times."),
    ("E11", "E11 — untrusted jobs in a trusted environment (§5.5/§7)",
     "Paper claim: J-GRAM executes untrusted jar files either in the "
     "service's own JVM or in a separate JVM `to increase security`; `the "
     "Grid administrator must decide which mode should be run`.",
     "Measured: the enforcement matrix blocks every hostile operation "
     "(filesystem escape, exfiltration, fork bomb, compute bomb) in both "
     "modes; the difference is the failure domain — an in-process violation "
     "contaminates the host where isolation contains it — against a "
     "constant ~50 µs/op crossing cost (1.05x on compute-bound jobs). That "
     "is the administrator's trade, quantified."),
    ("E12", "E12 — LDIF/XML formats and MDS integration (§3/§5.5/§6.6)",
     "Paper claim: output renders as LDIF or XML; the provider `can easily "
     "be integrated into the Globus MDS information service architecture`, "
     "enabling `a gradual transition`.",
     "Measured: the MDS-bridge view is attribute-identical to the native "
     "view for all five Table 1 keywords, and rendering costs ~2 µs/record "
     "in every format (XML ~30% larger than LDIF on the wire). DSML — which "
     "the paper says is `straightforward to support` — is also implemented "
     "and equally cheap."),
    ("E13", "E13 — security: handshake and contracts (§5.3)",
     "Paper claim: GSI provides authentication; the paper *aspires* to "
     "contracts `such as allow access to this resource from 3 to 4 pm to "
     "user X`.",
     "Measured: handshake CPU grows linearly with delegation depth (chain "
     "verification dominates), and the decision matrix implements the "
     "paper's example literally — Alice inside her 3–4 pm window is allowed "
     "(directly or through a live proxy), outside it denied, with expired "
     "proxies and unmapped users rejected at the right layers."),
    ("E14", "E14 — sporadic grids (§8)",
     "Paper claim: InfoGram suits grids `created just for a short period of "
     "time during sophisticated experiments at synchrotrons or photon "
     "sources`, being `easy to install it on a number of machines`.",
     "Measured: a 16-node grid is up (services + aggregate registration) in "
     "about a millisecond, answers its first scheduling query immediately, "
     "and runs a scan→acquire→analyze jarlet pipeline whose makespan (~95 "
     "ms of simulated analysis) dwarfs the bring-up — the deployment-speed "
     "property the scenario needs."),
    ("E15", "E15 — aggregate caching ablation (§3)",
     "Paper claim: `to increase the scalability of a distributed "
     "information service, the MDS provides an information caching "
     "function`.",
     "Measured: the GIIS member cache cuts pull traffic proportionally to "
     "its TTL (10 s cache ⇒ 10% of the no-cache pulls at 1 query/s) at the "
     "price of bounded staleness — the same freshness/load dial as E5, one "
     "level up the hierarchy. The TTL=0 row is the no-cache ablation."),
    ("E16", "E16 — scatter-gather fan-out and the allocation-free hit path",
     "No direct paper artifact — this is a performance property of the "
     "reproduction itself: `(info=all)` must not serialize K slow "
     "providers, and the cache-hit path must not pay per-query metric-name "
     "formatting or attribute deep-copies.",
     "Measured: the fan-out pool holds `(info=all)` at ~1.01× one "
     "provider's cost out to K=8 (sequential would be 8×, ~201 ms), and "
     "the warm hit path serves ~1.2 M queries/s through pre-interned "
     "keyword handles and `Arc`-shared snapshots. Smoke gate: "
     "`scripts/bench_smoke.sh` runs the quick variant and fails unless "
     "`BENCH_parallel_fanout.json` reports `pass: true` (K=4 within 1.5× "
     "of one provider)."),
    ("E17", "E17 — fault storm: supervised fetches under provider failure",
     "No direct paper artifact — the paper assumes providers execute; this "
     "measures the reproduction's fault-domain supervisor (DESIGN.md §10) "
     "under a seeded storm of failures, hangs and slowdowns.",
     "Measured: with 10% of provider executions failing (plus 300 ms hangs "
     "that blow the deadline budgets), ≥99% of queries are still answered "
     "— retried in-fetch where the budget allows, served last-known-good "
     "and honestly tagged degraded where it does not — and the whole run "
     "replays byte-identically from its seed. Smoke gate: "
     "`scripts/bench_smoke.sh` runs the quick variant and fails unless "
     "`BENCH_fault_storm.json` reports `pass: true`."),
    ("E18", "E18 — adaptive refresh scheduling vs TTL-expiry polling",
     "No direct paper artifact — the paper refreshes reactively (a query "
     "after TTL expiry blocks on `updateState`). This measures the "
     "reproduction's refresh scheduler (DESIGN.md §11), which prefetches "
     "from the §6.6 performance catalog and the observed query demand.",
     "Measured: with demand concentrated on two hot and one warm keyword, "
     "the scheduler holds a ≥99.9% cache-hit rate at steady load while "
     "executing strictly fewer provider invocations than polling every "
     "keyword each TTL (cold keywords are skipped, not refreshed), and "
     "replays byte-identically from its seed. Smoke gate: "
     "`scripts/bench_smoke.sh` runs the quick variant and fails unless "
     "`BENCH_refresh_sched.json` reports `pass: true`."),
    ("E19", "E19 — push-subscription fan-out at scale",
     "No direct paper artifact — the paper's queries are pull-only; this "
     "measures the reproduction's `(action=subscribe)` delivery pipeline "
     "(DESIGN.md \u00a712): 100k standing subscriptions across 64 keywords, "
     "every update frame round-tripped through the real wire encoding.",
     "Measured: every subscriber receives every version of its keyword "
     "exactly once, in order — zero missed updates across 2M deliveries — "
     "and fan-out cost is O(subscribers-of-keyword): p99 notify latency "
     "divided by the keyword's subscriber count stays in the low "
     "microseconds. Smoke gate: `scripts/bench_smoke.sh` runs the quick "
     "variant (10k subscriptions) and fails unless `BENCH_push_sub.json` "
     "reports `pass: true`."),
    ("E20", "E20 — crash storm: the WAL under injected disk faults",
     "Paper claim (\u00a76): `Logging and check pointing is enabled through "
     "a logging service ... the log can be used to restart our InfoGRAM "
     "service`. This measures the reproduction's crash-consistent WAL "
     "(DESIGN.md \u00a714) under a seeded disk-fault storm — failed appends, "
     "short writes, failed fsyncs, a mid-storm power loss — not just a "
     "clean restart (that is E10).",
     "Measured: every acked submission survives the power loss, no job "
     "observed terminal before the crash is resurrected, recovery replays "
     "checkpoint + a bounded tail (not the whole history) in "
     "sub-millisecond time, faulty-disk windows surface as honest "
     "UNAVAILABLE refusals rather than silent acks, and the entire run — "
     "acks, refusals, outcomes, recovery stats — replays byte-identically "
     "from its seed. Gate: `scripts/check_crash.sh` runs the quick "
     "variant plus the crash-point test suites and fails unless "
     "`BENCH_crash_storm.json` reports `pass: true`."),
]

out = []
out.append("""# EXPERIMENTS — paper vs. measured

Every artifact of the paper's evaluation (Table 1 and Figures 1–4 — the
paper's evaluation is architectural/qualitative; it reports **no**
quantitative tables) and every quantitative *claim* in its prose (E5–E15),
plus the reproduction's own performance and resilience properties
(E16–E20), is regenerated by a dedicated benchmark target. This file
pairs each with its measured outcome.

Reproduce everything with:

```console
$ cargo bench --workspace 2>&1 | tee bench_output.txt
$ python3 scripts/gen_experiments.py   # regenerates this file
```

Absolute numbers below come from one run on one machine (in-memory
transport, simulated hosts — see DESIGN.md §2 for the substitutions); the
*shapes* — who wins, by what factor, where the crossovers fall — are the
reproducible content. All cache/degradation experiments run on a virtual
clock and are bit-for-bit deterministic; the wire experiments use real
threads and real time and vary a few percent between runs.

Summary of shapes:

| id | paper says | measured verdict |
|----|------------|------------------|
| T1 | Table 1 semantics (TTL per keyword, 0 = always execute) | holds exactly |
| F1 | three-tier GRAM structure | backend dominates; gatekeeper cost is per-connection |
| F2/F3/F4 | unified service "reduces the number of protocols and components" | exactly 2x fewer connections & handshakes at every mix, latency at parity or better |
| E5 | caching beats exec-per-request for many clients | up to ~1000x latency win; backend load capped at 1/TTL |
| E6 | quality threshold trades refreshes for accuracy | monotone in both, as specified |
| E7 | immediate/cached/last semantics | execution counts 240/~60/0, latency ordered |
| E8 | performance tag reports mean + σ | within ~0.2% of ground truth |
| E9 | monitors collapse concurrent updates | exactly 1 execution per storm, up to 32x saving |
| E10 | restart from the log | 100% of in-flight jobs recovered, ~ms recovery |
| E11 | sandbox modes trade overhead vs containment | all attacks blocked; 1.05x isolation cost |
| E12 | LDIF/XML + MDS compatibility | attribute-identical views; µs-scale rendering |
| E13 | contracts like "3 to 4 pm for user X" | decision matrix matches the example literally |
| E14 | sporadic grids are practical | 16-node grid usable in ~1 ms |
| E15 | aggregate caching scales the MDS | pulls ∝ 1/TTL, staleness bounded by TTL |
| E16 | (ours) `(info=all)` must not serialize providers | K=8 slow keywords at ~1.01x one provider's cost; ~1.2 M hits/s |
| E17 | (ours) failures must degrade, not error | ≥99% availability under a seeded 10% failure storm; deterministic replay |
| E18 | (ours) refresh on demand, not on a timer | ≥99.9% hit rate with strictly fewer executions than TTL polling |
| E19 | (ours) push subscriptions must not miss updates | 2M deliveries, zero gaps; fan-out ∝ subscribers-of-keyword, ~µs p99 each |
| E20 | restart from the log, on a disk that lies | zero acked-loss / zero resurrections through a mid-storm power loss; checkpoint + bounded-tail replay |
""")

missing = []
for exp_id, title, paper, measured in ORDER:
    out.append(f"\n---\n\n## {title}\n")
    out.append(f"**Paper.** {paper}\n")
    out.append(f"**Measured.** {measured}\n")
    if exp_id in blocks:
        out.append("```text")
        out.append(blocks[exp_id])
        out.append("```")
    else:
        missing.append(exp_id)
        out.append("*(bench output missing — rerun cargo bench)*")

out.append("""

---

## Micro-benchmarks

`cargo bench -p infogram-bench --bench micro` (criterion) covers the hot
paths: RSL parse/print, xRSL extraction, LDIF/XML rendering and parsing,
wire encode/decode, certificate-chain verification and proxy delegation.
These have no counterpart in the paper; they exist to keep the substrate
honest (all are in the nanosecond–microsecond range, so none of the
experiment-level effects above are parser artifacts).
""")

(ROOT / "EXPERIMENTS.md").write_text("\n".join(out))
print(f"wrote EXPERIMENTS.md; blocks found: {sorted(blocks)}; missing: {missing}")
