//! Cross-crate property-based tests on the system's core invariants.
//!
//! Module-level proptests live next to their modules (RSL round-trips,
//! base64, LDIF/XML escaping, wire decoding). The properties here span
//! subsystems: cache freshness under arbitrary query schedules, WAL
//! replay fidelity, filter round-trips, job lifecycle legality.

use infogram::exec::wal::{RecoveredState, WalEvent};
use infogram::info::entry::SystemInformation;
use infogram::info::provider::FnProvider;
use infogram::info::quality::DegradationFn;
use infogram::mds::filter::Filter;
use infogram::proto::message::JobStateCode;
use infogram::sim::{Clock, ManualClock};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Cache invariants (§6.2) under arbitrary schedules.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    /// Advance the clock by this many milliseconds.
    Advance(u64),
    /// Non-blocking read.
    Query,
    /// Cache-preferring read.
    Cached,
    /// Forced refresh.
    Update,
    /// Last-stored read.
    Last,
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..500).prop_map(CacheOp::Advance),
        Just(CacheOp::Query),
        Just(CacheOp::Cached),
        Just(CacheOp::Update),
        Just(CacheOp::Last),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under ANY schedule of operations:
    /// 1. `query_state` never returns a value older than the TTL;
    /// 2. every successful read returns the value of the most recent
    ///    provider execution (monotone versions);
    /// 3. `cached`/`update` never fail once anything was produced.
    #[test]
    fn cache_schedule_invariants(
        ttl_ms in 1u64..400,
        ops in prop::collection::vec(arb_cache_op(), 1..60),
    ) {
        let clock = ManualClock::new();
        let version = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&version);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", move || {
                let v = v2.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(vec![("v".to_string(), v.to_string())])
            })),
            clock.clone(),
            Duration::from_millis(ttl_ms),
            DegradationFn::default(),
        );
        let ttl = Duration::from_millis(ttl_ms);
        let mut last_seen_version = 0u64;
        for op in ops {
            match op {
                CacheOp::Advance(ms) => clock.advance(Duration::from_millis(ms)),
                CacheOp::Query => {
                    if let Ok(snap) = si.query_state() {
                        let age = clock.now().since(snap.produced_at);
                        prop_assert!(age < ttl, "query served {age:?} old with ttl {ttl:?}");
                        let v: u64 = snap.attributes[0].1.parse().unwrap();
                        prop_assert!(v >= last_seen_version, "version went backwards");
                        last_seen_version = v;
                    }
                }
                CacheOp::Cached => {
                    let snap = si.cached_state().unwrap();
                    let v: u64 = snap.attributes[0].1.parse().unwrap();
                    prop_assert!(v >= last_seen_version);
                    last_seen_version = v;
                    // Freshly served cache content is within TTL...
                    let age = clock.now().since(snap.produced_at);
                    prop_assert!(age < ttl || !snap.from_cache);
                }
                CacheOp::Update => {
                    let snap = si.update_state().unwrap();
                    prop_assert!(!snap.from_cache, "update always executes (no delay set)");
                    let v: u64 = snap.attributes[0].1.parse().unwrap();
                    prop_assert!(v > last_seen_version, "update must produce a new version");
                    last_seen_version = v;
                }
                CacheOp::Last => {
                    if let Ok(snap) = si.last_state() {
                        let v: u64 = snap.attributes[0].1.parse().unwrap();
                        prop_assert!(v >= last_seen_version);
                        last_seen_version = v;
                    }
                }
            }
            // Global invariant: execution count equals the version counter.
            prop_assert_eq!(si.execution_count(), version.load(Ordering::SeqCst));
        }
    }
}

// ---------------------------------------------------------------------
// WAL replay fidelity: encode → decode → recover is lossless for the
// recovery-relevant facts.
// ---------------------------------------------------------------------

fn arb_state() -> impl Strategy<Value = JobStateCode> {
    prop_oneof![
        Just(JobStateCode::Pending),
        Just(JobStateCode::Active),
        Just(JobStateCode::Suspended),
        Just(JobStateCode::Done),
        Just(JobStateCode::Failed),
        Just(JobStateCode::Canceled),
    ]
}

fn arb_event() -> impl Strategy<Value = WalEvent> {
    prop_oneof![
        (1u64..100).prop_map(|epoch| WalEvent::ServiceStarted { epoch }),
        (1u64..50, "[ -~]{0,40}", "[a-z]{1,8}").prop_map(|(job_id, rsl, account)| {
            WalEvent::Submitted {
                job_id,
                rsl: rsl.replace('\x1f', " "),
                owner: format!("/O=Grid/CN=U{job_id}"),
                account,
            }
        }),
        (1u64..50, arb_state())
            .prop_map(|(job_id, state)| WalEvent::StateChanged { job_id, state }),
        (
            1u64..50,
            arb_state(),
            prop::option::of(-128i32..128),
            0.0f64..1000.0
        )
            .prop_map(
                |(job_id, state, exit_code, wall_seconds)| WalEvent::Finished {
                    job_id,
                    state,
                    exit_code,
                    wall_seconds: (wall_seconds * 1000.0).round() / 1000.0,
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every event round-trips its log line exactly.
    #[test]
    fn wal_event_roundtrip(ev in arb_event()) {
        let line = ev.encode();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(WalEvent::decode(&line), Some(ev));
    }

    /// Recovery classifies a job as finished exactly when its plan says
    /// a Finished event was logged, regardless of interleaved noise
    /// (state changes, restarts, Finished events for unknown job ids).
    #[test]
    fn recovery_classification(
        plans in prop::collection::vec(
            (any::<bool>(), arb_state(), prop::option::of(-128i32..128)),
            0..20,
        ),
        noise in prop::collection::vec(arb_event(), 0..10),
    ) {
        use std::collections::BTreeSet;
        let mut events: Vec<WalEvent> = Vec::new();
        let mut expected_finished: BTreeSet<u64> = BTreeSet::new();
        let mut all_ids: BTreeSet<u64> = BTreeSet::new();
        for (i, (finish, state, exit_code)) in plans.iter().enumerate() {
            let job_id = (i + 1) as u64;
            all_ids.insert(job_id);
            events.push(WalEvent::Submitted {
                job_id,
                rsl: format!("(executable=job{job_id})"),
                owner: format!("/O=Grid/CN=U{job_id}"),
                account: "acct".to_string(),
            });
            if *finish {
                expected_finished.insert(job_id);
                events.push(WalEvent::Finished {
                    job_id,
                    state: *state,
                    exit_code: *exit_code,
                    wall_seconds: 1.0,
                });
            }
        }
        // Noise: events about *unknown* job ids must not change the
        // classification (drop noise Submitted events, offset the rest).
        for n in noise {
            match n {
                WalEvent::Submitted { .. } => {}
                WalEvent::ServiceStarted { epoch } => {
                    events.push(WalEvent::ServiceStarted { epoch })
                }
                WalEvent::StateChanged { job_id, state } => events.push(
                    WalEvent::StateChanged { job_id: job_id + 1000, state },
                ),
                WalEvent::Finished {
                    job_id,
                    state,
                    exit_code,
                    wall_seconds,
                } => events.push(WalEvent::Finished {
                    job_id: job_id + 1000,
                    state,
                    exit_code,
                    wall_seconds,
                }),
                WalEvent::InfoQueried { .. } => events.push(n),
                // A checkpoint would (by design) replace the planned
                // history — not noise; skip it.
                WalEvent::Checkpoint(_) => {}
            }
        }
        let state = RecoveredState::from_events(&events);
        let recovered_ids: BTreeSet<u64> = state.jobs.iter().map(|j| j.job_id).collect();
        prop_assert_eq!(&recovered_ids, &all_ids);
        let unfinished_ids: BTreeSet<u64> =
            state.unfinished().iter().map(|j| j.job_id).collect();
        let expected_unfinished: BTreeSet<u64> =
            all_ids.difference(&expected_finished).copied().collect();
        prop_assert_eq!(&unfinished_ids, &expected_unfinished);
    }
}

// ---------------------------------------------------------------------
// MDS filter display → parse round-trip for generated filters.
// ---------------------------------------------------------------------

fn arb_filter() -> impl Strategy<Value = Filter> {
    let attr = "[a-z][a-z0-9-]{0,8}";
    let value = "[a-zA-Z0-9._:-]{1,10}";
    let leaf = prop_oneof![
        (attr, value).prop_map(|(a, v)| Filter::Equals(a, v)),
        attr.prop_map(Filter::Present),
        (attr, value).prop_map(|(a, v)| Filter::GreaterEq(a, v)),
        (attr, value).prop_map(|(a, v)| Filter::LessEq(a, v)),
        // A substring anchored at both ends with one part prints without
        // any '*' and is indistinguishable from Equals; exclude that
        // (semantically identical) corner from the generator.
        (
            attr,
            prop::collection::vec(value, 1..3),
            any::<bool>(),
            any::<bool>()
        )
            .prop_filter_map(
                "fully-anchored single part is Equals",
                |(a, parts, s, e)| {
                    if s && e && parts.len() == 1 {
                        None
                    } else {
                        Some(Filter::Substring(a, parts, s, e))
                    }
                }
            ),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn filter_display_parse_roundtrip(f in arb_filter()) {
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("'{printed}' failed to reparse: {e}"));
        prop_assert_eq!(reparsed, f);
    }

    /// Filter evaluation is total (never panics) on arbitrary entries.
    #[test]
    fn filter_eval_total(
        f in arb_filter(),
        attrs in prop::collection::vec(("[a-z]{1,6}", "[ -~]{0,12}"), 0..6),
    ) {
        let get = |name: &str| -> Vec<String> {
            attrs
                .iter()
                .filter(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone())
                .collect()
        };
        let _ = f.matches(&get);
    }
}

// ---------------------------------------------------------------------
// GridMap render → parse round-trip with generated identities.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gridmap_roundtrip(
        users in prop::collection::vec(("[A-Za-z][A-Za-z ]{0,14}", "[a-z][a-z0-9]{0,7}"), 1..8),
    ) {
        use infogram::gsi::{Dn, GridMap};
        let mut map = GridMap::new();
        // Later entries for the same DN replace earlier ones, as a
        // gridmap reload would; keep only the last per DN in the model.
        let mut expected: std::collections::BTreeMap<Dn, String> = Default::default();
        for (cn, account) in &users {
            let cn = cn.trim();
            if cn.is_empty() {
                continue;
            }
            let dn = Dn::user("Grid", "ANL", cn);
            map.add(dn.clone(), &[account]);
            expected.insert(dn, account.clone());
        }
        let reparsed = GridMap::parse(&map.render()).unwrap();
        for (dn, account) in expected {
            prop_assert_eq!(reparsed.lookup(&dn), Some(account.as_str()));
        }
    }
}

// ---------------------------------------------------------------------
// DSML/XML/LDIF agree on content for arbitrary single-line values.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formats_agree_on_content(
        values in prop::collection::vec("[ -~]{0,20}", 1..5),
    ) {
        use infogram::proto::record::InfoRecord;
        use infogram::proto::render::{dsml, ldif, xml};
        let mut rec = InfoRecord::new("Kw", "host.grid");
        for (i, v) in values.iter().enumerate() {
            rec.push(&format!("a{i}"), v);
        }
        let from_ldif = ldif::parse(&ldif::render(std::slice::from_ref(&rec)));
        let from_xml = xml::parse(&xml::render(std::slice::from_ref(&rec)));
        let from_dsml = dsml::parse(&dsml::render(std::slice::from_ref(&rec)));
        for (i, v) in values.iter().enumerate() {
            let name = format!("a{i}");
            prop_assert_eq!(&from_ldif[0].get(&name).unwrap().value, v);
            prop_assert_eq!(&from_xml[0].get(&name).unwrap().value, v);
            prop_assert_eq!(&from_dsml[0].get(&name).unwrap().value, v);
        }
    }
}

// ---------------------------------------------------------------------
// Persistent-query xRSL: client-built subscribe/unsubscribe requests
// parse back to exactly what the builder meant.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The render direction is the client's request builder (see
    /// `GramClient::subscribe`): fold keywords into
    /// `(action=subscribe)(info=k)…`. Parsing must recover the action
    /// and the exact selector list, in order.
    #[test]
    fn subscribe_request_roundtrip(
        keywords in prop::collection::vec("[A-Za-z][A-Za-z0-9]{0,11}", 1..6),
    ) {
        use infogram::rsl::xrsl::{RequestAction, XrslRequest};
        use infogram::rsl::InfoSelector;
        let text = keywords.iter().fold("(action=subscribe)".to_string(), |acc, k| {
            format!("{acc}(info={k})")
        });
        let req = XrslRequest::from_text(&text).unwrap();
        prop_assert_eq!(req.action, RequestAction::Subscribe);
        prop_assert_eq!(req.subscription, None);
        let got: Vec<String> = req
            .info
            .iter()
            .map(|s| match s {
                InfoSelector::Keyword(k) => k.clone(),
                other => panic!("unexpected selector {other:?}"),
            })
            .collect();
        prop_assert_eq!(got, keywords);
    }

    /// `(action=unsubscribe)(subscription=N)` recovers N for any id,
    /// and rendering through the client builder is the identity.
    #[test]
    fn unsubscribe_request_roundtrip(id in any::<u64>()) {
        use infogram::rsl::xrsl::{RequestAction, XrslRequest};
        let text = format!("(action=unsubscribe)(subscription={id})");
        let req = XrslRequest::from_text(&text).unwrap();
        prop_assert_eq!(req.action, RequestAction::Unsubscribe);
        prop_assert_eq!(req.subscription, Some(id));
        prop_assert!(req.info.is_empty());
    }
}

// ---------------------------------------------------------------------
// Record deltas: diff → apply reproduces the new record byte for byte,
// and batches survive the wire framing exactly.
// ---------------------------------------------------------------------

fn arb_record(keyword: &'static str) -> impl Strategy<Value = infogram::proto::record::InfoRecord> {
    use infogram::proto::record::{Attribute, InfoRecord};
    (
        prop::collection::vec(
            (
                "[a-z]{1,6}",
                "[ -~]{0,12}",
                prop::option::of(0.0f64..1.0),
                prop::option::of(0.0f64..1e6),
            ),
            0..6,
        ),
        any::<bool>(),
        prop::option::of(0.0f64..1e6),
    )
        .prop_map(move |(attrs, degraded, stale_age)| {
            let mut rec = InfoRecord::new(keyword, "node0.grid");
            // Distinct names: a record is a map rendered in provider
            // order, so the generator must not produce duplicates.
            let mut seen = std::collections::HashSet::new();
            for (name, value, quality, age) in attrs {
                if !seen.insert(name.clone()) {
                    continue;
                }
                let mut a = Attribute::new(&format!("{keyword}:{name}"), &value);
                a.quality = quality;
                a.age_secs = age;
                rec.attributes.push(a);
            }
            rec.degraded = degraded;
            rec.stale_age_secs = if degraded { stale_age } else { None };
            rec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For ANY pair of snapshots of a keyword, applying the diff to the
    /// old record reproduces the new one exactly — attributes, order,
    /// quality/age annotations, and the degraded/stale-age marks.
    #[test]
    fn delta_diff_apply_is_exact(
        prev in arb_record("K"),
        next in arb_record("K"),
        version in 1u64..1_000_000,
    ) {
        use infogram::proto::RecordDelta;
        let delta = RecordDelta::diff(Some(&prev), &next, version);
        let rebuilt = delta.apply(Some(&prev)).unwrap();
        prop_assert_eq!(rebuilt, next.clone());
        // And a cold start (no baseline) always works via a snapshot.
        let full = RecordDelta::diff(None, &next, version);
        prop_assert!(full.full);
        prop_assert_eq!(full.apply(None).unwrap(), next);
    }

    /// A delta batch encoded into an `Update` frame decodes to the
    /// identical batch through the public wire path.
    #[test]
    fn delta_batch_survives_the_update_frame(
        id in any::<u64>(),
        pairs in prop::collection::vec((arb_record("K"), arb_record("K")), 1..5),
        version in 1u64..1_000_000,
    ) {
        use infogram::proto::message::{update_frame, Reply};
        use infogram::proto::{encode_deltas, RecordDelta};
        let deltas: Vec<RecordDelta> = pairs
            .iter()
            .enumerate()
            .map(|(i, (prev, next))| RecordDelta::diff(Some(prev), next, version + i as u64))
            .collect();
        let frame = update_frame(id, &encode_deltas(&deltas));
        let Reply::Update { id: got_id, deltas: got } = Reply::decode(&frame).unwrap() else {
            panic!("expected an update frame");
        };
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, deltas);
    }
}
