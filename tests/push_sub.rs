//! Persistent push subscriptions, end to end over the wire: a client
//! opens `(action=subscribe)` queries against a full sandbox stack and
//!
//! * receives an initial full snapshot followed by contiguous
//!   incremental deltas as the refresh scheduler re-runs providers,
//! * sees job-state transitions stream in under the virtual `jobs`
//!   keyword,
//! * observes eviction as a typed [`ClientError::SubscriptionEnded`]
//!   carrying `SLOW_CONSUMER` (and loses the connection, by design),
//! * keeps degraded/stale-age annotations intact across the delta
//!   encode/decode round trip,
//! * transparently resubscribes after a severed connection with no
//!   version gap, and
//! * survives an 8-thread subscribe/unsubscribe storm with the hub
//!   draining back to zero.

use infogram::proto::message::codes;
use infogram::proto::record::InfoRecord;
use infogram::quickstart::Sandbox;
use infogram_client::{ClientError, InfoGramClient, RetryPolicy};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Subscribe → initial full snapshot → live deltas with contiguous
/// versions → clean unsubscribe. The refresh wheel starts empty; the
/// subscription itself is what puts `Date` on it, so every update here
/// is scheduler-driven push, not polling.
#[test]
fn subscribe_streams_snapshot_then_contiguous_deltas() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    let id = client.subscribe(&["Date"]).expect("subscribe accepted");
    assert_eq!(client.subscription_id(), Some(id));

    // The channel is cold, so the first frame is the first scheduled
    // refresh: version 1, full snapshot.
    let first = client.wait_update().expect("first update streams in");
    assert_eq!(first.id, id);
    assert_eq!(first.records.len(), 1);
    assert_eq!(first.records[0].keyword, "Date");
    assert!(
        !first.records[0].attributes.is_empty(),
        "snapshot carries the provider's attributes"
    );
    assert!(first.deltas[0].full, "cold channel opens with a snapshot");
    assert_eq!(first.deltas[0].version, 1);

    // Subsequent refreshes push incremental deltas; `wait_update`
    // verifies contiguity internally (a gap is a protocol error), so
    // three more successes prove no update was missed.
    let mut version = first.deltas[0].version;
    for _ in 0..3 {
        let next = client.wait_update().expect("live update");
        assert_eq!(next.deltas[0].version, version + 1, "versions contiguous");
        version = next.deltas[0].version;
        assert_eq!(next.records[0].keyword, "Date");
    }

    client.unsubscribe().expect("unsubscribe acknowledged");
    assert_eq!(client.subscription_id(), None);
    assert_eq!(
        sandbox.service.subscriptions().active(),
        0,
        "unsubscribe released the hub entry synchronously"
    );
    sandbox.shutdown();
}

/// Job-state transitions stream under the virtual `jobs` keyword: a
/// submit on the same connection pushes PENDING/ACTIVE/DONE records
/// through the subscription without any status polling.
#[test]
fn jobs_keyword_pushes_state_transitions() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    client.subscribe(&["jobs"]).expect("subscribe accepted");
    let handle = client
        .submit("(executable=simwork)(arguments=10)", false)
        .expect("job accepted");

    // Three transitions, three pushes; stop at the terminal one.
    let mut states = Vec::new();
    while states.last().map(String::as_str) != Some("DONE") {
        let update = client.wait_update().expect("job transition pushed");
        for rec in &update.records {
            assert_eq!(rec.keyword, "jobs");
            assert_eq!(
                rec.get("jobs:handle").expect("handle attribute").value,
                handle.to_string()
            );
            states.push(
                rec.get("jobs:state")
                    .expect("state attribute")
                    .value
                    .clone(),
            );
        }
        assert!(states.len() <= 8, "runaway transition stream: {states:?}");
    }
    // The fork backend may start the process during submit, so the
    // first pushed state is PENDING or already ACTIVE.
    assert!(
        states[0] == "PENDING" || states[0] == "ACTIVE",
        "saw the initial state: {states:?}"
    );
    sandbox.shutdown();
}

/// Eviction surfaces as the typed error with the slow-consumer code,
/// and — by design — takes the whole connection with it: the final
/// `SubEnd` is the last frame the peer ever receives.
#[test]
fn eviction_is_a_typed_slow_consumer_error() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    let id = client.subscribe(&["Memory"]).expect("subscribe accepted");
    let first = client.wait_update().expect("stream is live");
    assert!(first.deltas[0].full);

    sandbox.service.subscriptions().evict(
        id,
        codes::SLOW_CONSUMER,
        "subscriber fell behind (injected)",
    );

    // Updates already in flight may precede the final notice.
    let err = loop {
        match client.wait_update() {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    match err {
        ClientError::SubscriptionEnded {
            id: ended,
            code,
            message,
        } => {
            assert_eq!(ended, id);
            assert_eq!(code, codes::SLOW_CONSUMER);
            assert!(message.contains("fell behind"), "{message}");
        }
        other => panic!("expected SubscriptionEnded, got {other:?}"),
    }
    assert_eq!(client.subscription_id(), None, "client state cleared");
    assert!(
        client.info("Date").is_err(),
        "eviction closes the outbox, which terminates the connection"
    );
    sandbox.shutdown();
}

/// A degraded record (fault-domain stale serve) pushed through the hub
/// keeps its record-level annotations across the delta encode/decode
/// round trip: the subscriber knows the value is stale and how old it
/// is.
#[test]
fn degraded_annotations_survive_the_push_pipeline() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    client.subscribe(&["Date"]).expect("subscribe accepted");
    client.wait_update().expect("stream is live");

    let host = sandbox
        .addr()
        .rsplit_once(':')
        .map(|(h, _)| h.to_string())
        .unwrap_or_default();
    let mut stale = InfoRecord::new("Date", &host);
    stale.degraded = true;
    stale.stale_age_secs = Some(12.5);
    stale.push("Date:output", "Tue Jul 16 09:00:00 UTC 2002");
    sandbox.service.subscriptions().notify_record("Date", stale);

    // Scheduler refreshes may interleave with the injected push; the
    // degraded record arrives with its annotations intact.
    let degraded = loop {
        let update = client.wait_update().expect("update");
        if let Some(rec) = update.records.iter().find(|r| r.degraded) {
            assert!(
                update.deltas.iter().any(|d| d.degraded),
                "the wire-level delta carries the flag too"
            );
            break rec.clone();
        }
    };
    let age = degraded.stale_age_secs.expect("stale age annotated");
    assert!((age - 12.5).abs() < 1e-9, "age survives exactly, got {age}");
    assert_eq!(
        degraded.get("Date:output").expect("value present").value,
        "Tue Jul 16 09:00:00 UTC 2002"
    );
    sandbox.shutdown();
}

/// A dropped connection under a retry policy transparently reconnects
/// *and resubscribes*: the fresh stream opens with full snapshots at
/// the channels' current versions, so the client proves it observed no
/// gap — `wait_update` would fail with a "missed update" protocol
/// error otherwise.
#[test]
fn resubscribe_after_reconnect_shows_no_gap() {
    let sandbox = Sandbox::start();
    let mut client = InfoGramClient::connect_with_retry(
        Arc::new(Arc::clone(&sandbox.net)),
        sandbox.addr(),
        &sandbox.user,
        &sandbox.roots,
        sandbox.clock.clone(),
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    )
    .expect("connects");

    let before = client.subscribe(&["Date"]).expect("subscribe accepted");
    let first = client.wait_update().expect("first update");
    assert!(first.deltas.iter().all(|d| d.full));
    client.wait_update().expect("stream is live mid-flight");

    client.sever();

    let after = client.wait_update().expect("update after reconnect");
    assert_eq!(
        client.reconnect_count(),
        1,
        "exactly one transparent reconnect"
    );
    assert!(
        after.deltas.iter().all(|d| d.full),
        "fresh stream opens with full snapshots"
    );
    let resubscribed = client
        .subscription_id()
        .expect("subscription re-established");
    assert_ne!(before, resubscribed, "a new server-side registration");

    // And it keeps flowing: contiguity from the snapshot onward.
    let next = client.wait_update().expect("stream continues");
    assert_eq!(next.id, resubscribed);
    sandbox.shutdown();
}

/// Eight threads churning subscribe → receive → unsubscribe against
/// one service: no panics, every stream delivers, and the hub drains
/// back to zero when the storm passes.
#[test]
fn subscribe_unsubscribe_storm_drains_clean() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let sandbox = Sandbox::start();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sandbox = &sandbox;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = sandbox.connect_client();
                barrier.wait();
                for round in 0..ROUNDS {
                    let keywords: &[&str] = if (t + round) % 2 == 0 {
                        &["Date", "jobs"]
                    } else {
                        &["Memory", "CPU"]
                    };
                    client.subscribe(keywords).expect("subscribe");
                    let update = client.wait_update().expect("stream delivers");
                    assert!(!update.deltas.is_empty());
                    client.unsubscribe().expect("unsubscribe");
                }
            });
        }
    });
    assert_eq!(
        sandbox.service.subscriptions().active(),
        0,
        "the storm left no subscription behind"
    );
    sandbox.shutdown();
}
