//! Model-checked invariants for the provider fault-domain supervisor.
//!
//! Runs only with `--features model` (`scripts/check_model.sh`): each
//! test hands a small multi-threaded scenario to the schedule explorer
//! in `infogram_sim::model`, which re-executes it under every bounded
//! interleaving of its synchronization points on the virtual clock.
//!
//! Checked invariants (see DESIGN.md §10):
//!
//! * **Half-open probe exclusivity (seeded)** — a fixture reintroducing
//!   a tempting refactor bug (the probe slot is claimed in a *second*
//!   critical section, a classic check-then-act) must be *caught* by
//!   the explorer, and the shipped [`Supervisor`] must pass the
//!   identical scenario: an open breaker never admits two concurrent
//!   probes into a provider it believes is down.
//! * **Breaker transitions under racing failures** — concurrent failed
//!   fetches drive the breaker only through legal states: every
//!   interleaving lands in a consistent (state, streak, gate) triple,
//!   never a torn hybrid like `Open` with a sub-threshold streak.
//! * **Stale-serve honesty** — while the breaker holds fetches off, a
//!   supervised fetch never runs the provider and never fabricates
//!   freshness: answers are the last-known-good value, stale-tagged,
//!   with the original `produced_at` preserved.
//!
//! Scenarios are re-executed once per schedule, so each closure builds
//! all of its state fresh.

#![cfg(feature = "model")]
// Test harness: panic-on-failure is the error policy here — and inside a
// model scenario a panic IS the violation signal the explorer looks for.
#![allow(clippy::unwrap_used)]

use infogram::info::provider::{FnProvider, ProviderError};
use infogram::info::{
    Admission, BreakerState, DegradationFn, Supervisor, SupervisorConfig, SystemInformation,
};
use infogram::sim::model;
use infogram::sim::{Clock, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn regression_config() -> model::Config {
    // Environment-independent: the regression must be found (and the
    // fixed code exhaustively cleared) regardless of EXHAUSTIVE=….
    model::Config {
        max_executions: 50_000,
        preemption_bound: usize::MAX,
        max_steps: 10_000,
    }
}

/// Breaker tunables with jitter off so gate arithmetic is exact.
fn breaker_config(failure_threshold: u32) -> SupervisorConfig {
    SupervisorConfig {
        failure_threshold,
        max_retries: 0,
        jitter: 0.0,
        ..SupervisorConfig::default()
    }
}

// ---------------------------------------------------------------------
// Seeded regression: probe admission split into check + claim
// ---------------------------------------------------------------------

/// The shipped [`Supervisor`] claims the half-open probe slot *inside*
/// the critical section that checks it. This fixture reintroduces the
/// tempting refactor that splits the two (say, to compute the jittered
/// cool-down outside the lock): the eligibility check and the
/// `probing = true` claim become separate lock acquisitions, and two
/// racing fetches can both pass the check before either claims —
/// admitting two concurrent probes.
struct BuggyBreaker {
    inner: Mutex<BuggyInner>,
}

struct BuggyInner {
    state: BreakerState,
    open_until: SimTime,
    probing: bool,
}

impl BuggyBreaker {
    /// A breaker already tripped, cooling down until `open_until`.
    fn tripped(open_until: SimTime) -> Self {
        BuggyBreaker {
            inner: Mutex::new(BuggyInner {
                state: BreakerState::Open,
                open_until,
                probing: false,
            }),
        }
    }

    fn admit(&self, now: SimTime) -> Admission {
        let eligible = {
            let mut g = self.inner.lock();
            match g.state {
                BreakerState::Closed => return Admission::Execute { probe: false },
                BreakerState::Open if now >= g.open_until => {
                    g.state = BreakerState::HalfOpen;
                    !g.probing
                }
                BreakerState::HalfOpen => !g.probing,
                BreakerState::Open => false,
            }
        };
        if !eligible {
            return Admission::Deferred {
                retry_after: Duration::from_millis(25),
            };
        }
        // BUG (reintroduced): the probe slot is claimed in a second
        // lock acquisition — between the eligibility check above and
        // this claim, a concurrent fetch passes the same check.
        self.inner.lock().probing = true;
        Admission::Execute { probe: true }
    }

    /// Successful probe: release the slot and close the breaker.
    fn on_probe_success(&self) {
        let mut g = self.inner.lock();
        g.probing = false;
        g.state = BreakerState::Closed;
    }
}

/// Two fetches race a breaker whose cool-down has just elapsed. Each
/// admitted probe holds an in-flight token for the duration of its
/// (simulated) provider run; the invariant is that the tokens never
/// overlap — an open breaker admits exactly one probe at a time.
fn probe_race_scenario(
    admit: Arc<dyn Fn(SimTime) -> Admission + Send + Sync>,
    on_probe_success: Arc<dyn Fn() + Send + Sync>,
) {
    // Cool-down (500 ms, jitter off) has just elapsed.
    let now = SimTime::from_millis(600);
    let probes_in_flight = Arc::new(Mutex::new(0u32));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let admit = Arc::clone(&admit);
        let on_probe_success = Arc::clone(&on_probe_success);
        let probes_in_flight = Arc::clone(&probes_in_flight);
        handles.push(model::spawn(move || {
            if let Admission::Execute { probe: true } = admit(now) {
                {
                    let mut n = probes_in_flight.lock();
                    *n += 1;
                    assert!(*n <= 1, "two half-open probes admitted concurrently");
                }
                // The probe "runs the provider" here; a second probe
                // admitted meanwhile trips the assertion above.
                *probes_in_flight.lock() -= 1;
                on_probe_success();
            }
        }));
    }
    for h in handles {
        h.join();
    }
}

#[test]
fn model_finds_seeded_double_probe_bug() {
    let report = model::explore(&regression_config(), || {
        let b = Arc::new(BuggyBreaker::tripped(SimTime::from_millis(500)));
        let b2 = Arc::clone(&b);
        probe_race_scenario(
            Arc::new(move |now| b.admit(now)),
            Arc::new(move || b2.on_probe_success()),
        );
    });
    let violation = report
        .violation
        .as_ref()
        .expect("the model checker must find the seeded double-probe bug");
    assert!(
        violation.message.contains("two half-open probes"),
        "unexpected violation: {violation:?}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "a failing schedule must be reported for replay"
    );
}

#[test]
fn shipped_supervisor_passes_the_probe_race_scenario() {
    // The shipped Supervisor under the *identical* scenario: the
    // Open→HalfOpen transition sets `probing` in the same critical
    // section that observes it, so the second fetch is always deferred
    // (or, after the first probe already closed the breaker, admitted
    // as an ordinary non-probe fetch — which holds no probe token).
    let report = model::explore(&regression_config(), || {
        let s = Arc::new(Supervisor::new("K", breaker_config(3)));
        // Trip it: three straight transient failures at t=0.
        for _ in 0..3 {
            s.on_failure(SimTime::ZERO, false);
        }
        assert_eq!(s.state(), BreakerState::Open);
        let s2 = Arc::clone(&s);
        probe_race_scenario(
            Arc::new(move |now| s.admit(now)),
            Arc::new(move || s2.on_success()),
        );
    });
    assert!(
        report.violation.is_none(),
        "shipped Supervisor must survive every schedule: {:?}",
        report.violation
    );
    assert!(report.complete, "state space must be exhausted: {report:?}");
}

// ---------------------------------------------------------------------
// Breaker-transition invariants under racing failures
// ---------------------------------------------------------------------

#[test]
fn racing_failures_leave_the_breaker_in_a_consistent_state() {
    model::check("breaker transitions under racing failures", || {
        let s = Arc::new(Supervisor::new("K", breaker_config(2)));
        let now = SimTime::ZERO;
        let failures = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let s = Arc::clone(&s);
            let failures = Arc::clone(&failures);
            handles.push(model::spawn(move || {
                if let Admission::Execute { probe } = s.admit(now) {
                    assert!(!probe, "a closed breaker never admits probes");
                    let after = s.on_failure(now, probe);
                    assert!(
                        matches!(after, BreakerState::Closed | BreakerState::Open),
                        "a failed non-probe fetch lands in Closed (gated) or Open: {after:?}"
                    );
                    *failures.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join();
        }
        // Depending on the interleaving, the second fetch was either
        // admitted too (both saw the fresh Closed breaker) or deferred
        // by the first failure's backoff gate. Both outcomes — and only
        // those two — are legal, and each must be internally consistent.
        let failed = *failures.lock();
        match failed {
            2 => {
                // Threshold met: tripped, and fetches defer with a hint.
                assert_eq!(s.state(), BreakerState::Open);
                assert_eq!(s.streak(), 2);
                match s.admit(now) {
                    Admission::Deferred { retry_after } => assert!(retry_after > Duration::ZERO),
                    other => panic!("open breaker must defer: {other:?}"),
                }
            }
            1 => {
                // Sub-threshold: still Closed, but the backoff gate is
                // armed — an immediate retry is deferred, not admitted.
                assert_eq!(s.state(), BreakerState::Closed);
                assert_eq!(s.streak(), 1);
                assert!(
                    matches!(s.admit(now), Admission::Deferred { .. }),
                    "backoff gate must defer an immediate retry"
                );
            }
            n => panic!("a fresh Closed breaker admits the first fetch (got {n} failures)"),
        }
    });
}

// ---------------------------------------------------------------------
// Stale-serve honesty while the breaker is open
// ---------------------------------------------------------------------

const TTL: Duration = Duration::from_millis(10);

#[test]
fn open_breaker_stale_serves_without_running_the_provider() {
    model::check("stale-serve honesty under an open breaker", || {
        let clock = model::virtual_clock();
        let calls = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&calls);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", move || {
                let n = {
                    let mut g = c2.lock();
                    *g += 1;
                    *g
                };
                match n {
                    1 => Ok(vec![("v".to_string(), "1".to_string())]),
                    _ => Err(ProviderError::Other("scripted failure".to_string())),
                }
            })),
            clock.clone(),
            TTL,
            // A long linear decay keeps the cached value useful for the
            // whole scenario — stale-serves answer instead of erroring.
            DegradationFn::Linear {
                lifetime: Duration::from_secs(60),
            },
        );
        si.supervisor().set_config(breaker_config(1));
        // Seed the cache, expire it, then trip the breaker with one
        // failed supervised refresh (threshold 1, no retries).
        let seeded_at = clock.now();
        si.update_state().unwrap();
        clock.advance(Duration::from_millis(20));
        let tripping = si.fetch_supervised(None).unwrap();
        assert!(tripping.stale, "the failed refresh falls back to stale");
        assert_eq!(si.breaker_state(), BreakerState::Open);
        let executed_when_opened = *calls.lock();

        let mut handles = Vec::new();
        for _ in 0..2 {
            let si = Arc::clone(&si);
            handles.push(model::spawn(move || {
                let snap = si.fetch_supervised(None).unwrap();
                assert!(snap.stale, "an open breaker serves stale-tagged answers");
                assert!(snap.from_cache);
                assert_eq!(
                    snap.produced_at, seeded_at,
                    "stale-serve must keep the true production time"
                );
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(
            *calls.lock(),
            executed_when_opened,
            "an open breaker never runs the provider"
        );
        assert_eq!(si.breaker_state(), BreakerState::Open);
    });
}
