//! Crash-consistency properties of the checksummed WAL (DESIGN §14).
//!
//! The frame format and recovery scanner promise that a crash at *any*
//! byte boundary — and corruption of any single byte — yields a log
//! that recovers to a prefix-consistent job table:
//!
//! * **Truncate anywhere, never lose an acked job**: for every byte
//!   prefix of a real log, recovery never panics, replays exactly the
//!   frames fully contained in the prefix, and reports the torn tail.
//! * **Never resurrect a finished job**: once a `Finished` frame is
//!   durable, every longer prefix recovers that job as terminal.
//! * **Flip any byte, recover the rest**: single-byte corruption is
//!   confined — recovered jobs are always a subset of the true
//!   history with their true outcomes, and damage is counted.
//! * **Honest degradation on the wire**: a full disk turns submissions
//!   into `UNAVAILABLE` + `retry-after-ms=` at the gram layer (never a
//!   silent ack), and the service heals once space returns.
//! * **Recovery telemetry**: damage found during replay is visible in
//!   `(info=metrics)`.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::exec::{FrameWal, MemStorage, RecoveredState, Wal, WalConfig, WalEvent, WalStorage};
use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::{DiskFaultPlan, SimTime};
use infogram_client::ClientError;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Single huge segment, no checkpoints: the tests below reason about
/// raw byte offsets, so keep the whole history in segment 1.
fn one_segment_cfg() -> WalConfig {
    WalConfig {
        segment_max_bytes: u64::MAX,
        checkpoint_every_events: u64::MAX,
        ..WalConfig::default()
    }
}

fn wal_over(storage: &Arc<MemStorage>, cfg: WalConfig) -> Wal {
    let sink = FrameWal::open(Arc::clone(storage) as Arc<dyn WalStorage>, cfg.clone()).unwrap();
    Wal::with_config(Box::new(sink), cfg)
}

/// Write a representative history — eight jobs, even ids finished — and
/// return the durable log bytes.
fn scripted_log() -> Vec<u8> {
    let storage = MemStorage::new();
    let wal = wal_over(&storage, one_segment_cfg());
    let commit = |evs: &[WalEvent]| wal.commit(SimTime::ZERO, evs).unwrap();
    commit(&[WalEvent::ServiceStarted { epoch: 1 }]);
    for job_id in 1..=8u64 {
        commit(&[
            WalEvent::Submitted {
                job_id,
                rsl: format!("(executable=simwork)(arguments={job_id}0)"),
                owner: format!("/O=Grid/O=Globus/CN=user{job_id}"),
                account: if job_id % 3 == 0 { "staff" } else { "guest" }.to_string(),
            },
            WalEvent::StateChanged {
                job_id,
                state: JobStateCode::Active,
            },
        ]);
        if job_id % 2 == 0 {
            commit(&[WalEvent::Finished {
                job_id,
                state: JobStateCode::Done,
                exit_code: Some(0),
                wall_seconds: job_id as f64,
            }]);
        }
    }
    storage.durable_bytes(1)
}

/// Walk the frame layout (`[len u32 LE][crc u32 LE][payload]`) and
/// return `(end_offset, event)` per frame — the test's independent
/// view of which events a byte prefix fully contains.
fn frames_of(bytes: &[u8]) -> Vec<(usize, WalEvent)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 8 + len;
        if end > bytes.len() {
            break;
        }
        let payload = std::str::from_utf8(&bytes[off + 8..end]).unwrap();
        out.push((end, WalEvent::decode(payload).unwrap()));
        off = end;
    }
    assert_eq!(off, bytes.len(), "scripted log ends on a frame boundary");
    out
}

fn recover(bytes: &[u8]) -> (Wal, RecoveredState) {
    let storage = MemStorage::new();
    storage.preload(1, bytes.to_vec());
    let wal = wal_over(&storage, one_segment_cfg());
    let state = wal.fold_snapshot().state;
    (wal, state)
}

// ---------------------------------------------------------------------
// Truncation at every byte prefix
// ---------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_prefix_recovers_exactly_the_contained_frames() {
    let bytes = scripted_log();
    let frames = frames_of(&bytes);
    assert!(
        frames.len() > 20,
        "history is non-trivial: {}",
        frames.len()
    );

    for n in 0..=bytes.len() {
        // The test's own fold of the frames fully inside the prefix.
        let contained: Vec<&WalEvent> = frames
            .iter()
            .filter(|(end, _)| *end <= n)
            .map(|(_, ev)| ev)
            .collect();
        let mut want_jobs: BTreeMap<u64, Option<JobStateCode>> = BTreeMap::new();
        for ev in &contained {
            match ev {
                WalEvent::Submitted { job_id, .. } => {
                    want_jobs.insert(*job_id, None);
                }
                WalEvent::Finished { job_id, state, .. } => {
                    want_jobs.insert(*job_id, Some(*state));
                }
                _ => {}
            }
        }
        let last_end = frames
            .iter()
            .filter(|(end, _)| *end <= n)
            .map(|(end, _)| *end)
            .next_back()
            .unwrap_or(0);

        let (wal, state) = recover(&bytes[..n]);
        let stats = wal.recovery_stats();
        assert_eq!(
            stats.corrupt_frames, 0,
            "prefix {n}: truncation is not corruption"
        );
        assert_eq!(
            stats.events_replayed,
            contained.len() as u64,
            "prefix {n}: replay exactly the contained frames"
        );
        assert_eq!(
            stats.truncated_tail_bytes,
            (n - last_end) as u64,
            "prefix {n}: the torn tail is measured"
        );

        // Never lose an acked job, never resurrect a finished one.
        let got: BTreeMap<u64, Option<JobStateCode>> = state
            .jobs
            .iter()
            .map(|j| (j.job_id, j.finished.map(|(s, _)| s)))
            .collect();
        assert_eq!(got, want_jobs, "prefix {n}: recovered job table");
    }
}

// ---------------------------------------------------------------------
// Single-byte corruption anywhere
// ---------------------------------------------------------------------

#[test]
fn flipping_any_single_byte_never_panics_and_never_invents_history() {
    let bytes = scripted_log();
    let frames = frames_of(&bytes);
    // Ground truth: final outcome per job in the undamaged history.
    let mut truth: BTreeMap<u64, Option<JobStateCode>> = BTreeMap::new();
    for (_, ev) in &frames {
        match ev {
            WalEvent::Submitted { job_id, .. } => {
                truth.insert(*job_id, None);
            }
            WalEvent::Finished { job_id, state, .. } => {
                truth.insert(*job_id, Some(*state));
            }
            _ => {}
        }
    }

    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x41;
        let (wal, state) = recover(&damaged);
        let stats = wal.recovery_stats();
        assert!(
            stats.corrupt_frames + stats.truncated_tail_bytes > 0,
            "flip at {pos}: damage must be detected and counted"
        );
        // Whatever survives is a subset of the true history with the
        // true outcomes (a job whose Finished frame was hit may recover
        // as unfinished — reported, not resurrected *differently*).
        for job in &state.jobs {
            let want = truth
                .get(&job.job_id)
                .unwrap_or_else(|| panic!("flip at {pos}: invented job {}", job.job_id));
            if let Some((got_state, _)) = job.finished {
                assert_eq!(
                    Some(got_state),
                    *want,
                    "flip at {pos}: job {} outcome rewritten",
                    job.job_id
                );
            }
        }
    }
}

#[test]
fn mid_log_corruption_is_skipped_and_the_rest_replays() {
    let bytes = scripted_log();
    let frames = frames_of(&bytes);
    // Damage the payload of job 2's Finished frame (CRC now mismatches).
    let (end, _) = frames
        .iter()
        .find(|(_, ev)| matches!(ev, WalEvent::Finished { job_id: 2, .. }))
        .unwrap();
    let mut damaged = bytes.clone();
    damaged[end - 1] ^= 0xff;

    let (wal, state) = recover(&damaged);
    let stats = wal.recovery_stats();
    assert_eq!(
        stats.corrupt_frames, 1,
        "exactly the damaged frame is counted"
    );
    assert_eq!(
        stats.events_replayed,
        frames.len() as u64 - 1,
        "everything after the bad frame still replays"
    );
    // Job 2 lost its terminal record — it is reported as unfinished,
    // while every other job keeps its true outcome.
    let job2 = state.jobs.iter().find(|j| j.job_id == 2).unwrap();
    assert!(job2.finished.is_none());
    let job4 = state.jobs.iter().find(|j| j.job_id == 4).unwrap();
    assert_eq!(job4.finished, Some((JobStateCode::Done, Some(0))));
    assert_eq!(state.jobs.len(), 8, "no submissions lost");
}

// ---------------------------------------------------------------------
// Honest degradation end-to-end through gram
// ---------------------------------------------------------------------

#[test]
fn full_disk_surfaces_unavailable_on_the_wire_and_heals() {
    let plan = DiskFaultPlan::new();
    let storage = MemStorage::with_plan(Some(Arc::clone(&plan)));
    let sink = FrameWal::open(
        Arc::clone(&storage) as Arc<dyn WalStorage>,
        WalConfig::default(),
    )
    .unwrap();
    let sandbox = Sandbox::start_with(SandboxConfig {
        wal_sink: Some(Box::new(sink)),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();

    // Healthy baseline: a job runs to completion.
    let ok = client
        .submit("(executable=simwork)(arguments=10)", false)
        .unwrap();
    let (state, _, _) = client
        .wait_terminal(&ok, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);

    // The disk fills: the submission is refused honestly — UNAVAILABLE
    // with a retry hint, never an ack for a job the log cannot hold.
    plan.fill_disk();
    match client.submit("(executable=simwork)(arguments=10)", false) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::UNAVAILABLE);
            assert!(message.contains("retry-after-ms="), "{message}");
        }
        other => panic!("expected UNAVAILABLE, got {other:?}"),
    }
    // While read-only, further submissions are rejected without even
    // probing the sink.
    assert!(client
        .submit("(executable=simwork)(arguments=10)", false)
        .is_err());
    let engine = sandbox.service.engine();
    assert!(engine.metrics().counter_value("wal.append_errors") >= 1);
    assert!(engine.metrics().counter_value("jobs.rejected_readonly") >= 2);
    assert_eq!(engine.metrics().gauge_value("wal.read_only"), 1.0);

    // Space returns; after the advertised backoff the next submission
    // probes the sink, succeeds, and the service leaves read-only mode.
    plan.free_space();
    std::thread::sleep(Duration::from_millis(1100));
    let healed = client
        .submit("(executable=simwork)(arguments=10)", false)
        .unwrap();
    let (state, _, _) = client
        .wait_terminal(&healed, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(engine.metrics().gauge_value("wal.read_only"), 0.0);

    sandbox.shutdown();
}

// ---------------------------------------------------------------------
// Recovery telemetry in (info=metrics)
// ---------------------------------------------------------------------

#[test]
fn recovery_damage_is_visible_in_metrics() {
    // A history with one finished and one in-flight job…
    let storage = MemStorage::new();
    {
        let wal = wal_over(&storage, one_segment_cfg());
        let commit = |evs: &[WalEvent]| wal.commit(SimTime::ZERO, evs).unwrap();
        commit(&[WalEvent::ServiceStarted { epoch: 1 }]);
        for job_id in [1u64, 2] {
            commit(&[WalEvent::Submitted {
                job_id,
                rsl: "(executable=simwork)(arguments=60000)".to_string(),
                owner: "/O=Grid/O=Globus/CN=alice".to_string(),
                account: "guest".to_string(),
            }]);
        }
        commit(&[WalEvent::Finished {
            job_id: 1,
            state: JobStateCode::Done,
            exit_code: Some(0),
            wall_seconds: 1.0,
        }]);
    }
    // …plus a corrupt frame (good length, bad checksum) and a torn tail.
    let mut bytes = storage.durable_bytes(1);
    bytes.extend_from_slice(&5u32.to_le_bytes());
    bytes.extend_from_slice(&0xdead_beefu32.to_le_bytes());
    bytes.extend_from_slice(b"junk!");
    bytes.extend_from_slice(&[0x10, 0x00, 0x00]); // 3 torn tail bytes

    let damaged = MemStorage::new();
    damaged.preload(1, bytes);
    let sink = FrameWal::open(
        Arc::clone(&damaged) as Arc<dyn WalStorage>,
        WalConfig::default(),
    )
    .unwrap();
    let sandbox = Sandbox::start_with(SandboxConfig {
        wal_sink: Some(Box::new(sink)),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();

    let r = client.metrics().unwrap();
    let rec = &r.records[0];
    let value = |name: &str| {
        rec.get(name)
            .unwrap_or_else(|| panic!("missing attribute {name}"))
            .value
            .clone()
    };
    assert_eq!(value("wal.recovered_jobs"), "2");
    assert_eq!(value("wal.corrupt_frames"), "1");
    assert_eq!(value("wal.truncated_tail_bytes"), "3");
    assert!(rec.get("wal.checkpoint_age").is_some());

    sandbox.shutdown();
}
