//! Model-checked invariants for the adaptive refresh scheduler.
//!
//! Runs only with `--features model` (`scripts/check_model.sh`): each
//! test hands a small multi-threaded scenario to the schedule explorer
//! in `infogram_sim::model`, which re-executes it under every bounded
//! interleaving of its synchronization points on the virtual clock.
//!
//! Checked invariants (see DESIGN.md §11):
//!
//! * **No lost wakeups, no double-enqueue (seeded)** — a fixture
//!   reintroducing the tempting refactor bug (an in-flight refresh
//!   reschedules *unconditionally*, without the epoch check guarding
//!   against a concurrent re-watch) must be *caught* by the explorer,
//!   and the shipped [`RefreshScheduler`] must pass the identical
//!   scenario: after any interleaving of `tick` and `watch`, the
//!   keyword has exactly one pending wheel entry — never zero (a lost
//!   wakeup) and never two (a self-inflicted refresh storm).
//! * **No refresh storm under concurrent ticks** — two racing `tick`
//!   calls refresh a due keyword exactly once; the wheel's pop is the
//!   mutual exclusion, not luck.
//! * **Breaker-open never busy-loops** — when the provider is tripped,
//!   a parked keyword's next deadline is strictly in the future, so no
//!   sequence of ticks at a standing clock re-executes the provider.
//!
//! Scenarios are re-executed once per schedule, so each closure builds
//! all of its state fresh.

#![cfg(feature = "model")]
// Test harness: panic-on-failure is the error policy here — and inside a
// model scenario a panic IS the violation signal the explorer looks for.
#![allow(clippy::unwrap_used)]

use infogram::info::config::SchedConfig;
use infogram::info::provider::{FnProvider, ProviderError};
use infogram::info::{
    BreakerState, DegradationFn, RefreshScheduler, SupervisorConfig, SystemInformation,
};
use infogram::sim::metrics::MetricSet;
use infogram::sim::model;
use infogram::sim::timer::{Ticket, TimerWheel};
use infogram::sim::{Clock, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const TTL: Duration = Duration::from_millis(100);

fn regression_config() -> model::Config {
    // Environment-independent: the regression must be found (and the
    // fixed code exhaustively cleared) regardless of EXHAUSTIVE=….
    model::Config {
        max_executions: 50_000,
        preemption_bound: usize::MAX,
        max_steps: 10_000,
    }
}

/// A watched entry over a call-counting provider. `fail` scripts the
/// provider to always fail transiently (for the breaker scenarios).
fn counting_entry(
    clock: infogram::sim::clock::SharedClock,
    fail: bool,
) -> (Arc<SystemInformation>, Arc<Mutex<u32>>) {
    let calls = Arc::new(Mutex::new(0u32));
    let c2 = Arc::clone(&calls);
    let si = SystemInformation::new(
        Box::new(FnProvider::new("K", move || {
            *c2.lock() += 1;
            if fail {
                Err(ProviderError::Other("scripted failure".to_string()))
            } else {
                Ok(vec![("v".to_string(), "1".to_string())])
            }
        })),
        clock,
        TTL,
        DegradationFn::Linear {
            lifetime: Duration::from_secs(60),
        },
    );
    (si, calls)
}

fn sched_on(clock: infogram::sim::clock::SharedClock) -> Arc<RefreshScheduler> {
    RefreshScheduler::new(clock, SchedConfig::default(), MetricSet::new())
}

// ---------------------------------------------------------------------
// Seeded regression: in-flight refresh reschedules without an epoch check
// ---------------------------------------------------------------------

/// The shipped scheduler stamps every watch with an epoch and lets an
/// in-flight refresh reschedule only if its epoch still matches. This
/// fixture reintroduces the tempting simplification — "the flight popped
/// the only ticket, so it can just reschedule when it's done": between
/// the pop and the reschedule, a concurrent re-watch (whose cancel finds
/// no ticket to cancel — the flight holds it implicitly) enqueues its
/// own entry, and the completing flight enqueues a second one. The
/// keyword now refreshes twice per period, forever.
struct BuggySched {
    state: Mutex<BuggyState>,
}

struct BuggyState {
    wheel: TimerWheel<String>,
    ticket: Option<Ticket>,
}

impl BuggySched {
    /// One keyword ("k") watched and already due at `at`.
    fn watched(at: SimTime) -> Self {
        let mut wheel = TimerWheel::new();
        let ticket = wheel.schedule(at, "k".to_string());
        BuggySched {
            state: Mutex::new(BuggyState {
                wheel,
                ticket: Some(ticket),
            }),
        }
    }

    /// Pop the due keyword, "run the provider" outside the lock, then
    /// reschedule. BUG (reintroduced): the reschedule is unconditional —
    /// no epoch check — so it stacks on top of a concurrent re-watch.
    fn tick(&self, now: SimTime) {
        let popped = {
            let mut g = self.state.lock();
            g.wheel.pop_due(now).map(|d| {
                g.ticket = None;
                d.item
            })
        };
        if let Some(key) = popped {
            // The provider runs here, lock released.
            let mut g = self.state.lock();
            g.ticket = Some(g.wheel.schedule(now.plus(TTL), key));
        }
    }

    /// Re-watch: supersede the previous schedule.
    fn rewatch(&self, now: SimTime) {
        let mut g = self.state.lock();
        if let Some(t) = g.ticket.take() {
            g.wheel.cancel(t);
        }
        g.ticket = Some(g.wheel.schedule(now.plus(TTL), "k".to_string()));
    }
}

#[test]
fn model_finds_seeded_double_enqueue_bug() {
    let report = model::explore(&regression_config(), || {
        let s = Arc::new(BuggySched::watched(SimTime::ZERO));
        let now = SimTime::from_millis(100);
        let s1 = Arc::clone(&s);
        let s2 = Arc::clone(&s);
        let a = model::spawn(move || s1.tick(now));
        let b = model::spawn(move || s2.rewatch(now));
        a.join();
        b.join();
        let pending = s.state.lock().wheel.len();
        assert_eq!(
            pending, 1,
            "a superseded in-flight refresh must not re-enqueue: {pending} entries for one keyword"
        );
    });
    let violation = report
        .violation
        .as_ref()
        .expect("the model checker must find the seeded double-enqueue bug");
    assert!(
        violation.message.contains("must not re-enqueue"),
        "unexpected violation: {violation:?}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "a failing schedule must be reported for replay"
    );
}

#[test]
fn shipped_scheduler_passes_the_rewatch_race_scenario() {
    // The shipped RefreshScheduler under the identical race: `tick` pops
    // the due keyword and runs the refresh off-lock while `watch`
    // re-watches it. The epoch stamped at watch time and re-checked at
    // flight completion makes every interleaving land in the same state:
    // one watched keyword, one pending wheel entry.
    let report = model::explore(&regression_config(), || {
        let clock = model::virtual_clock();
        let (si, calls) = counting_entry(clock.clone(), false);
        let sched = sched_on(clock.clone());
        sched.watch(Arc::clone(&si), None).unwrap();

        let s1 = Arc::clone(&sched);
        let s2 = Arc::clone(&sched);
        let si2 = Arc::clone(&si);
        let a = model::spawn(move || {
            s1.tick();
        });
        let b = model::spawn(move || {
            s2.watch(si2, None).unwrap();
        });
        a.join();
        b.join();

        assert_eq!(sched.watched(), 1);
        assert_eq!(
            sched.pending(),
            1,
            "exactly one pending entry per keyword — no lost wakeup, no double-enqueue"
        );
        assert_eq!(*calls.lock(), 1, "the race runs the provider exactly once");

        // The surviving entry is live: one full period later, exactly
        // one more refresh happens (a lost wakeup would run zero; a
        // double-enqueue would run two).
        clock.advance(TTL + TTL);
        sched.tick();
        assert_eq!(
            *calls.lock(),
            2,
            "the keyword keeps refreshing after the race"
        );
    });
    assert!(
        report.violation.is_none(),
        "shipped RefreshScheduler must survive every schedule: {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// No refresh storm under concurrent ticks
// ---------------------------------------------------------------------

#[test]
fn concurrent_ticks_refresh_a_due_keyword_exactly_once() {
    model::check("refresh storm under concurrent ticks", || {
        let clock = model::virtual_clock();
        let (si, calls) = counting_entry(clock.clone(), false);
        let sched = sched_on(clock.clone());
        sched.watch(si, None).unwrap();

        let mut handles = Vec::new();
        for _ in 0..2 {
            let sched = Arc::clone(&sched);
            handles.push(model::spawn(move || {
                sched.tick();
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(
            *calls.lock(),
            1,
            "each due keyword is popped — and refreshed — by exactly one tick"
        );
        assert_eq!(sched.pending(), 1);

        // And at most once per period afterwards.
        clock.advance(TTL + TTL);
        sched.tick();
        sched.tick(); // same instant: nothing further is due
        assert_eq!(*calls.lock(), 2, "one refresh per period, not more");
    });
}

// ---------------------------------------------------------------------
// Breaker-open keywords park; they never busy-loop
// ---------------------------------------------------------------------

#[test]
fn tripped_provider_parks_with_a_future_deadline() {
    model::check("breaker-open keyword never busy-loops", || {
        let clock = model::virtual_clock();
        let (si, calls) = counting_entry(clock.clone(), true);
        // Threshold 1, no retries, jitter off: the first failure trips
        // the breaker and the gate arithmetic is exact.
        si.supervisor().set_config(SupervisorConfig {
            failure_threshold: 1,
            max_retries: 0,
            jitter: 0.0,
            ..SupervisorConfig::default()
        });
        let sched = sched_on(clock.clone());
        sched.watch(Arc::clone(&si), None).unwrap();

        // Two racing ticks: one claims the due keyword and burns the
        // (zero-retry) budget; the other must not double-execute.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let sched = Arc::clone(&sched);
            handles.push(model::spawn(move || {
                sched.tick();
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(*calls.lock(), 1, "one bounded refresh, no pile-on");
        assert_eq!(si.breaker_state(), BreakerState::Open);
        assert_eq!(sched.watched(), 1, "transient failures never evict");
        let deadline = sched
            .next_deadline()
            .expect("a parked keyword stays scheduled");
        assert!(
            deadline > clock.now(),
            "parked strictly past the cool-down — ticking at a standing clock must be a no-op"
        );

        // The no-busy-loop guarantee, executed: any number of ticks at
        // the standing clock run the provider zero more times.
        for _ in 0..3 {
            sched.tick();
        }
        assert_eq!(*calls.lock(), 1, "an open breaker is never hot-looped");
    });
}
