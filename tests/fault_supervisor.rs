//! Fault-domain supervisor, end to end: circuit breakers, deadline
//! budgets, last-known-good stale-serve, GIIS member fall-back, and the
//! client's reconnect/retry-after behaviour — all under deterministic
//! fault injection.

use infogram::host::commands::{ChargeMode, CommandRegistry};
use infogram::host::machine::SimulatedHost;
use infogram::info::config::ServiceConfig;
use infogram::info::entry::QueryError;
use infogram::info::service::{InformationService, QueryOptions};
use infogram::info::BreakerState;
use infogram::proto::message::codes;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::clock::Clock;
use infogram::sim::fault::{Fault, FaultPlan, StormProfile};
use infogram::sim::metrics::MetricSet;
use infogram::sim::ManualClock;
use infogram_client::{ClientError, RetryPolicy};
use infogram_rsl::InfoSelector;
use std::sync::Arc;
use std::time::Duration;

type World = (
    Arc<ManualClock>,
    Arc<CommandRegistry>,
    Arc<InformationService>,
    MetricSet,
);

/// A direct (no wire protocol) service on a virtual clock, so faults and
/// backoff windows are stepped deterministically.
fn manual_service(config_text: &str) -> World {
    let clock = ManualClock::new();
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
    let metrics = MetricSet::new();
    let info = InformationService::from_config(
        &ServiceConfig::parse(config_text).expect("config"),
        Arc::clone(&registry),
        clock.clone(),
        metrics.clone(),
    );
    (clock, registry, info, metrics)
}

#[test]
fn breaker_trips_after_failures_and_half_open_probe_recovers() {
    let (clock, registry, info, metrics) = manual_service("100 Probe date -u\n");
    let entry = info.lookup("Probe").expect("configured");

    // 3 supervised fetches x (1 attempt + 2 retries) consume 9 faults.
    let plan = FaultPlan::new();
    plan.script("date", vec![Fault::Fail; 9]);
    registry.set_fault_plan(plan);

    for round in 1..=3 {
        assert!(entry.fetch_supervised(None).is_err(), "round {round}");
        // Step past the (jittered) in-between backoff gate.
        clock.advance(Duration::from_millis(200));
    }
    assert_eq!(entry.breaker_state(), BreakerState::Open);
    assert_eq!(entry.execution_count(), 9, "each round retried twice");
    assert_eq!(metrics.counter_value("info.retries"), 6);
    assert_eq!(metrics.gauge_value("info.breaker.Probe") as u32, 1);

    // While cooling, fetches are rejected without running the provider,
    // and the rejection carries a machine-readable retry-after hint.
    match entry.fetch_supervised(None) {
        Err(QueryError::Unavailable { retry_after }) => {
            assert!(retry_after > Duration::ZERO);
            assert!(retry_after <= Duration::from_millis(600), "{retry_after:?}");
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    assert_eq!(entry.execution_count(), 9, "breaker open: no execution");

    // Past the cool-down the breaker goes half-open: a single probe runs
    // (the script is exhausted, so it succeeds) and closes the breaker.
    clock.advance(Duration::from_secs(1));
    let snap = entry.fetch_supervised(None).expect("probe succeeds");
    assert!(!snap.stale);
    assert_eq!(entry.breaker_state(), BreakerState::Closed);
    assert_eq!(entry.execution_count(), 10, "exactly one probe");
    assert_eq!(metrics.gauge_value("info.breaker.Probe") as u32, 0);
}

#[test]
fn stale_serve_quality_decays_until_hard_failure() {
    // Linear degradation over 10 s: stale answers stay honest about
    // their age and the entry hard-fails only when quality floors.
    let (clock, registry, info, metrics) =
        manual_service("1000 Mem /sbin/sysinfo.exe -mem\n@degradation Mem linear 10000\n");
    let entry = info.lookup("Mem").expect("configured");

    let fresh = entry.fetch_supervised(None).expect("healthy first fetch");
    assert!(!fresh.stale);
    let produced_at = fresh.produced_at;

    let plan = FaultPlan::new();
    plan.script("sysinfo", vec![Fault::Fail; 100]);
    registry.set_fault_plan(plan);

    // 2 s later the TTL has lapsed; the refresh fails and the supervisor
    // serves the last-known-good snapshot tagged with its true age.
    clock.advance(Duration::from_secs(2));
    let stale = entry.fetch_supervised(None).expect("stale serve");
    assert!(stale.stale);
    assert_eq!(stale.produced_at, produced_at, "true production time kept");
    assert!(metrics.counter_value("info.stale_serves") >= 1);

    // The degraded answer flows to the record level with the annotation.
    let records = info
        .answer(
            &[InfoSelector::Keyword("Mem".to_string())],
            &QueryOptions::default(),
        )
        .expect("degraded but answered");
    assert!(records[0].degraded);
    let age = records[0].stale_age_secs.expect("age reported");
    assert!((2.0..9.0).contains(&age), "{age}");

    // Once the snapshot's quality floors to zero there is nothing honest
    // left to serve: the query hard-fails instead of returning junk.
    clock.advance(Duration::from_secs(9));
    assert!(entry.fetch_supervised(None).is_err(), "quality floored");
}

#[test]
fn deadline_budget_stops_retries_over_a_hang() {
    let (clock, registry, info, metrics) =
        manual_service("0 Load /usr/local/bin/cpuload.exe\n@degradation Load linear 60000\n");
    let entry = info.lookup("Load").expect("configured");
    entry.fetch_supervised(None).expect("healthy first fetch");
    assert_eq!(entry.execution_count(), 1);

    // The provider hangs for 30 virtual seconds — far over the budget.
    let plan = FaultPlan::new();
    plan.script("cpuload", vec![Fault::Hang(Duration::from_secs(30))]);
    registry.set_fault_plan(plan);

    let before = clock.now();
    let snap = entry
        .fetch_supervised(Some(Duration::from_millis(200)))
        .expect("stale serve after breach");
    assert!(snap.stale, "hang answered from last-known-good");
    assert_eq!(
        entry.execution_count(),
        2,
        "budget breached: no retry burned on a dead provider"
    );
    assert_eq!(metrics.counter_value("info.deadline_breaches"), 1);
    assert!(clock.now().since(before) >= Duration::from_secs(30));

    // The hang consumed the script; after the backoff window the next
    // fetch runs fresh again.
    clock.advance(Duration::from_millis(200));
    let snap = entry.fetch_supervised(None).expect("recovered");
    assert!(!snap.stale);
}

#[test]
fn seeded_fault_storm_replays_byte_identically() {
    fn run(seed: u64) -> String {
        let (clock, registry, info, _metrics) =
            manual_service("100 Date date -u\n100 CPU /sbin/sysinfo.exe -cpu\n");
        registry.set_fault_plan(FaultPlan::storm(
            seed,
            StormProfile {
                fail_p: 0.30,
                hang_p: 0.05,
                slow_p: 0.10,
                ..StormProfile::default()
            },
        ));
        let mut log = String::new();
        for round in 0..25 {
            clock.advance(Duration::from_millis(150));
            match info.answer(&[InfoSelector::All], &QueryOptions::default()) {
                Ok(records) => {
                    for r in &records {
                        log.push_str(&format!(
                            "{round} {} degraded={} age={:?}\n",
                            r.keyword, r.degraded, r.stale_age_secs
                        ));
                    }
                }
                Err(e) => log.push_str(&format!("{round} error: {e}\n")),
            }
        }
        log
    }
    let a = run(0xfa11);
    let b = run(0xfa11);
    assert_eq!(a, b, "same seed, same virtual schedule, same bytes");
}

#[test]
fn degraded_answers_reach_the_client_never_internal() {
    let mut text = infogram::info::config::TABLE1_TEXT.to_string();
    text.push_str("200 FlakyDate date +%s\n@degradation FlakyDate linear 60000\n");
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: ServiceConfig::parse(&text).expect("config"),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();

    let fresh = client.info("FlakyDate").expect("healthy");
    assert!(!fresh.degraded());
    assert_eq!(fresh.require_fresh().expect("fresh").len(), 1);

    // Every subsequent `date` execution fails. The client keeps getting
    // answers — degraded, honestly aged — never an INTERNAL error.
    let plan = FaultPlan::new();
    plan.script("date", vec![Fault::Fail; 1000]);
    sandbox.registry.set_fault_plan(plan);

    std::thread::sleep(Duration::from_millis(250)); // let the TTL lapse
    for round in 0..4 {
        let r = client
            .info("FlakyDate")
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(r.degraded(), "round {round} served last-known-good");
        assert!(r.stale_age_secs().unwrap_or(0.0) > 0.0);
        match r.require_fresh() {
            Err(ClientError::Degraded { stale_age_secs }) => {
                assert!(stale_age_secs.is_some())
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    sandbox.shutdown();
}

#[test]
fn xrsl_timeout_tightens_the_deadline_budget_over_a_hang() {
    // TTL 0 => every query executes the provider; default budget is the
    // 250 ms floor. A 200 ms hang therefore *survives* the default
    // budget (the in-fetch retry runs after it) but *breaches* an
    // explicit (timeout=150) — which must give up and stale-serve
    // instead of burning a retry into a dead budget.
    let mut text = infogram::info::config::TABLE1_TEXT.to_string();
    text.push_str("0 Hangy uptime\n@degradation Hangy linear 60000\n");
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: ServiceConfig::parse(&text).expect("config"),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();
    let warm = client.query_rsl("(info=Hangy)").expect("healthy warm-up");
    assert!(!warm.degraded());
    let info_service = sandbox.service.info_service();
    let entry = info_service.lookup("Hangy").expect("configured");
    assert_eq!(entry.execution_count(), 1);

    let hang = || {
        let plan = FaultPlan::new();
        plan.script("uptime", vec![Fault::Hang(Duration::from_millis(200))]);
        sandbox.registry.set_fault_plan(plan);
    };

    // (timeout=150): the hang blows the budget; the reply is the
    // last-known-good answer, degraded, with no retry attempted.
    hang();
    let r = client
        .query_rsl("(info=Hangy)(timeout=150)")
        .expect("stale serve, not INTERNAL");
    assert!(r.degraded(), "budget breached: served last-known-good");
    assert_eq!(entry.execution_count(), 2, "no retry into a dead budget");
    assert_eq!(
        info_service
            .metrics()
            .counter_value("info.deadline_breaches"),
        1
    );

    // Same hang, default 250 ms budget: the failed execution is within
    // budget, so the retry runs (script exhausted => healthy) and the
    // answer comes back fresh.
    std::thread::sleep(Duration::from_millis(60)); // clear the backoff gate
    hang();
    let r = client.query_rsl("(info=Hangy)").expect("fresh after retry");
    assert!(!r.degraded(), "within budget: retried to a fresh answer");
    assert_eq!(entry.execution_count(), 4, "hang + one retry");
    assert_eq!(
        info_service
            .metrics()
            .counter_value("info.deadline_breaches"),
        1,
        "200 ms hang does not breach the 250 ms default budget"
    );
    sandbox.shutdown();
}

#[test]
fn breaker_open_rejection_carries_retry_after_and_client_honors_it() {
    let mut text = infogram::info::config::TABLE1_TEXT.to_string();
    text.push_str("50 Recover uptime\n");
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: ServiceConfig::parse(&text).expect("config"),
        ..Default::default()
    });

    // Exactly 9 failures: three supervised fetches (1 + 2 retries each)
    // trip the breaker, leaving a healthy provider behind it.
    let plan = FaultPlan::new();
    plan.script("uptime", vec![Fault::Fail; 9]);
    sandbox.registry.set_fault_plan(plan);

    let mut plain = sandbox.connect_client();
    for _ in 0..3 {
        assert!(plain.info("Recover").is_err());
        std::thread::sleep(Duration::from_millis(80)); // clear backoff gate
    }
    // Breaker is now open and there is no snapshot to degrade to: the
    // wire-level rejection is UNAVAILABLE with a retry-after hint.
    match plain.info("Recover") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::UNAVAILABLE);
            assert!(message.contains("retry-after-ms="), "{message}");
        }
        other => panic!("expected UNAVAILABLE, got {other:?}"),
    }

    // A retrying client sleeps out the server's hint; its second attempt
    // lands as the half-open probe, which succeeds and closes the breaker.
    let mut retrying = infogram_client::InfoGramClient::connect_with_retry(
        Arc::new(Arc::clone(&sandbox.net)),
        sandbox.addr(),
        &sandbox.user,
        &sandbox.roots,
        sandbox.clock.clone(),
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    )
    .expect("connects");
    let r = retrying.info("Recover").expect("recovered after hint");
    assert!(!r.degraded(), "probe refreshed: answer is fresh");
    assert_eq!(retrying.reconnect_count(), 0, "no transport failure");
    sandbox.shutdown();
}

#[test]
fn giis_keeps_serving_records_of_an_open_member() {
    use infogram::mds::dit::Scope;
    use infogram::mds::filter::Filter;
    use infogram::mds::giis::Giis;
    use infogram::mds::gris::Gris;

    let clock = ManualClock::new();
    let giis = Giis::new(clock.clone(), Duration::from_secs(30));
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
    let info = InformationService::from_config(
        &ServiceConfig::table1(),
        Arc::clone(&registry),
        clock.clone(),
        MetricSet::new(),
    );
    giis.register(Gris::new(info));

    let everything = Filter::everything();
    let healthy = giis.search(giis.base(), Scope::Sub, &everything);
    assert_eq!(healthy.len(), 6, "host entry + 5 keywords");

    // All providers of the (only) member fail; its snapshots are far
    // past their Binary lifetimes by the next expiry, so the member pull
    // fails hard — yet the aggregate answer does not shrink.
    let plan = FaultPlan::new();
    for cmd in ["date", "sysinfo", "cpuload", "ls"] {
        plan.script(cmd, vec![Fault::Fail; 30]);
    }
    registry.set_fault_plan(plan);
    clock.advance(Duration::from_secs(31));
    let cached = giis.search(giis.base(), Scope::Sub, &everything);
    assert_eq!(cached.len(), 6, "cached member records keep serving");
    assert_eq!(giis.stale_pull_count(), 1);
}
