//! The same service over real TCP.
//!
//! Everything else in the suite uses the deterministic in-memory network;
//! this file proves the stack also runs over `std::net` sockets — frames,
//! handshake, info queries and jobs included.

use infogram::core::{InfoGramParams, InfoGramService};
use infogram::exec::sandbox::{ExecMode, Policy};
use infogram::exec::wal::Wal;
use infogram::gsi::{Authorizer, CertificateAuthority, Dn, GridMap};
use infogram::host::commands::{ChargeMode, CommandRegistry};
use infogram::host::machine::SimulatedHost;
use infogram::info::config::ServiceConfig;
use infogram::proto::message::JobStateCode;
use infogram::proto::transport::tcp::TcpTransport;
use infogram::sim::metrics::MetricSet;
use infogram::sim::{SimTime, SplitMix64, SystemClock};
use infogram_client::InfoGramClient;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn full_stack_over_tcp() {
    let clock = SystemClock::shared();
    let mut rng = SplitMix64::new(4242);
    let ca = CertificateAuthority::new_root(
        &Dn::user("Grid", "CA", "TCP Root"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(86_400),
    );
    let user = ca.issue(
        &Dn::user("Grid", "ANL", "TcpUser"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(3600),
    );
    let service_cred = ca.issue(
        &Dn::user("Grid", "Hosts", "127.0.0.1"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(3600),
    );
    let roots = vec![ca.certificate().clone()];
    let mut gridmap = GridMap::new();
    gridmap.add(Dn::user("Grid", "ANL", "TcpUser"), &["tcpuser"]);

    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::Sleep);
    let transport = TcpTransport::new();
    let service = InfoGramService::start(
        InfoGramParams {
            service_name: "infogram-tcp".to_string(),
            bind_addr: "127.0.0.1:0".to_string(),
            config: ServiceConfig::table1(),
            sandbox_policy: Policy::restrictive(),
            sandbox_mode: ExecMode::Isolated,
            credential: service_cred,
            trust_roots: roots.clone(),
            authorizer: Arc::new(Authorizer::gridmap_only(gridmap)),
        },
        registry,
        vec![],
        Wal::in_memory(),
        &transport,
        clock.clone(),
        MetricSet::new(),
    )
    .unwrap();

    let mut client =
        InfoGramClient::connect(&transport, service.addr(), &user, &roots, clock).unwrap();

    // Information query over real sockets.
    let result = client.info("Memory").unwrap();
    assert_eq!(result.record_count, 1);
    assert!(result.records[0].get("Memory:total").is_some());

    // Job over real sockets.
    let handle = client
        .submit("(executable=simwork)(arguments=30)", false)
        .unwrap();
    let (state, exit, _) = client
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));

    // Traffic was really metered by the TCP transport.
    assert!(transport.metrics().counter_value("net.bytes") > 0);
    service.shutdown();
}
