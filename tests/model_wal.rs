//! Model-checked invariants for the WAL group-commit protocol.
//!
//! Runs only with `--features model` (`scripts/check_model.sh`): each
//! test hands a small multi-threaded scenario to the schedule explorer
//! in `infogram_sim::model`, which re-executes it under every bounded
//! interleaving of its synchronization points.
//!
//! Checked invariants (see DESIGN.md §14):
//!
//! * **No ack before durable (seeded)** — a fixture reintroducing the
//!   tempting group-commit bug (the leader acks everything *enqueued*
//!   when its flush completes, instead of everything it actually
//!   *took* into the flushed batch) must be *caught* by the explorer:
//!   a committer that enqueued mid-flush gets an Ok for bytes that
//!   never reached the disk.
//! * **The shipped [`Wal`] passes the identical scenario** — a commit
//!   ticket only resolves Ok once its payload is fsynced; racing
//!   submitters never lose a ticket (every commit returns).
//! * **Failure honesty under races** — with an injected fsync failure,
//!   every racing committer gets either Ok-with-durable-bytes or an
//!   error; no interleaving produces an acked-but-lost record.

#![cfg(feature = "model")]
// Test harness: panic-on-failure is the error policy here — and inside a
// model scenario a panic IS the violation signal the explorer looks for.
#![allow(clippy::unwrap_used)]

use infogram::exec::{FrameWal, MemStorage, Wal, WalConfig, WalEvent, WalStorage};
use infogram::sim::model;
use infogram::sim::{DiskFaultPlan, SimTime};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

fn regression_config() -> model::Config {
    // Environment-independent: the regression must be found regardless
    // of EXHAUSTIVE=….
    model::Config {
        max_executions: 50_000,
        preemption_bound: usize::MAX,
        max_steps: 10_000,
    }
}

fn bounded_config() -> model::Config {
    // The shipped `Wal` touches several lock classes per commit (queue,
    // degraded latch, io, frames, storage), so the unpruned schedule
    // space dwarfs `max_executions`. CHESS-style preemption bounding
    // keeps the space exhaustible while still covering every schedule
    // reachable with ≤ 2 forced preemptions — the class the seeded
    // group-commit bug (and its relatives) live in.
    model::Config {
        max_executions: 50_000,
        preemption_bound: 2,
        max_steps: 10_000,
    }
}

/// True if `needle` is somewhere in the durable (crash-surviving) bytes
/// of the storage — frames embed payloads verbatim, so a committed
/// record is durable exactly when its encoded payload is.
fn durable_contains(storage: &MemStorage, needle: &str) -> bool {
    (1..=4u64).any(|seg| {
        let bytes = storage.durable_bytes(seg);
        bytes.windows(needle.len()).any(|w| w == needle.as_bytes())
    })
}

fn submit_event(job_id: u64) -> WalEvent {
    WalEvent::Submitted {
        job_id,
        rsl: format!("(executable=job{job_id})"),
        owner: format!("/O=Grid/CN=U{job_id}"),
        account: "acct".to_string(),
    }
}

// ---------------------------------------------------------------------
// Seeded regression: leader acks `enqueued` instead of `taken`
// ---------------------------------------------------------------------

/// The shipped `Wal` snapshots `taken..taken+batch` when the leader
/// drains the buffer, and on success advances `durable` only to the end
/// of that batch. This fixture reintroduces the tempting shortcut of
/// advancing `durable` to `enqueued` — "everything anyone asked for by
/// now" — which acks a payload that was enqueued *during* the flush and
/// is still sitting in the un-flushed buffer.
struct BuggyGroupWal {
    storage: Arc<MemStorage>,
    q: Mutex<BuggyQueue>,
    cv: Condvar,
}

#[derive(Default)]
struct BuggyQueue {
    buf: Vec<String>,
    enqueued: u64,
    durable: u64,
    flushing: bool,
}

impl BuggyGroupWal {
    fn new(storage: Arc<MemStorage>) -> Self {
        BuggyGroupWal {
            storage,
            q: Mutex::new(BuggyQueue::default()),
            cv: Condvar::new(),
        }
    }

    fn commit(&self, payload: &str) {
        let mut q = self.q.lock();
        q.enqueued += 1;
        let my = q.enqueued;
        q.buf.push(payload.to_string());
        loop {
            if q.durable >= my {
                return;
            }
            if !q.flushing {
                q.flushing = true;
                let batch = std::mem::take(&mut q.buf);
                drop(q);
                let mut bytes = Vec::new();
                for p in &batch {
                    bytes.extend_from_slice(p.as_bytes());
                }
                self.storage.append(1, &bytes).unwrap();
                self.storage.sync(1).unwrap();
                q = self.q.lock();
                q.flushing = false;
                // BUG (reintroduced): ack everything enqueued so far —
                // including payloads that arrived mid-flush and are
                // still in `buf`, not on the disk.
                q.durable = q.enqueued;
                self.cv.notify_all();
                continue;
            }
            self.cv.wait(&mut q);
        }
    }
}

#[test]
fn model_finds_seeded_ack_before_durable_bug() {
    let report = model::explore(&regression_config(), || {
        let storage = MemStorage::new();
        let wal = Arc::new(BuggyGroupWal::new(Arc::clone(&storage)));
        let mut handles = Vec::new();
        for payload in ["PAYLOAD-A", "PAYLOAD-B"] {
            let wal = Arc::clone(&wal);
            let storage = Arc::clone(&storage);
            handles.push(model::spawn(move || {
                wal.commit(payload);
                assert!(
                    durable_contains(&storage, payload),
                    "acked before durable: {payload} not on disk"
                );
            }));
        }
        for h in handles {
            h.join();
        }
    });
    let violation = report
        .violation
        .as_ref()
        .expect("the model checker must find the seeded ack-before-durable bug");
    assert!(
        violation.message.contains("acked before durable"),
        "unexpected violation: {violation:?}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "a failing schedule must be reported for replay"
    );
}

// ---------------------------------------------------------------------
// The shipped Wal under the identical scenario
// ---------------------------------------------------------------------

#[test]
fn shipped_wal_never_acks_before_durable() {
    let report = model::explore(&bounded_config(), || {
        let storage = MemStorage::new();
        let wal = Arc::new(Wal::new(Box::new(
            FrameWal::open(
                Arc::clone(&storage) as Arc<dyn WalStorage>,
                WalConfig::default(),
            )
            .unwrap(),
        )));
        let mut handles = Vec::new();
        for job_id in [1u64, 2] {
            let wal = Arc::clone(&wal);
            let storage = Arc::clone(&storage);
            handles.push(model::spawn(move || {
                let ev = submit_event(job_id);
                let payload = ev.encode();
                // No lost ticket: commit always returns; healthy disk
                // means it returns Ok.
                wal.commit(SimTime::ZERO, &[ev]).unwrap();
                assert!(
                    durable_contains(&storage, &payload),
                    "acked before durable: job {job_id} not on disk"
                );
            }));
        }
        for h in handles {
            h.join();
        }
    });
    assert!(
        report.violation.is_none(),
        "shipped Wal must survive every schedule: {:?}",
        report.violation
    );
    assert!(
        report.complete,
        "bounded state space must be exhausted: {report:?}"
    );
}

// ---------------------------------------------------------------------
// Failure honesty: an injected fsync failure never yields a lost ack
// ---------------------------------------------------------------------

#[test]
fn racing_committers_get_ok_durable_or_an_error() {
    let report = model::explore(&bounded_config(), || {
        let plan = DiskFaultPlan::new();
        plan.fail_sync(0); // the first fsync (whichever batch wins) fails
        let storage = MemStorage::with_plan(Some(plan));
        let wal = Arc::new(Wal::new(Box::new(
            FrameWal::open(
                Arc::clone(&storage) as Arc<dyn WalStorage>,
                WalConfig::default(),
            )
            .unwrap(),
        )));
        let mut handles = Vec::new();
        for job_id in [1u64, 2] {
            let wal = Arc::clone(&wal);
            let storage = Arc::clone(&storage);
            handles.push(model::spawn(move || {
                let ev = submit_event(job_id);
                let payload = ev.encode();
                // Every ticket resolves; Ok implies durable bytes. (An
                // error is legal — the batch hit the injected fsync
                // failure, or arrived while the log was read-only.)
                if wal.commit(SimTime::ZERO, &[ev]).is_ok() {
                    assert!(
                        durable_contains(&storage, &payload),
                        "acked before durable under fsync failure: job {job_id}"
                    );
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    assert!(
        report.violation.is_none(),
        "shipped Wal must be failure-honest on every schedule: {:?}",
        report.violation
    );
    assert!(
        report.complete,
        "bounded state space must be exhausted: {report:?}"
    );
}
