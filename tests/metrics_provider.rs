//! End-to-end tests of the self-describing `Metrics:` provider: drive
//! jobs and information queries through the unified dispatcher over the
//! in-memory transport, then ask the service to describe itself with
//! `(info=metrics)` and check that every instrumented layer — dispatch,
//! connection handling, the information cache, and the job engine — shows
//! up in the answer.

use infogram::quickstart::Sandbox;
use infogram::rsl::OutputFormat;
use infogram_client::QueryBuilder;
use std::time::Duration;

#[test]
fn metrics_keyword_reflects_all_four_layers() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    // Info-cache layer: a miss (first query) then a hit (within TTL).
    client.info("Memory").unwrap();
    client.info("Memory").unwrap();

    // Job layer: run one job to completion.
    let handle = client
        .submit("(executable=simwork)(arguments=20)", false)
        .unwrap();
    let (state, exit, _) = client
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert!(state.is_terminal());
    assert_eq!(exit, Some(0));

    // Now the service describes itself.
    let r = client.metrics().unwrap();
    assert_eq!(r.record_count, 1);
    let rec = &r.records[0];
    assert_eq!(rec.keyword, "Metrics");
    let value = |name: &str| {
        rec.get(name)
            .unwrap_or_else(|| panic!("missing attribute {name}"))
            .value
            .clone()
    };

    // Dispatch layer: per-kind outcome counters and latency quantiles.
    let info_ok: u64 = value("dispatch.info.ok").parse().unwrap();
    assert!(info_ok >= 2, "dispatch.info.ok = {info_ok}");
    assert_eq!(value("dispatch.job.ok"), "1");
    let status_ok: u64 = value("dispatch.status.ok").parse().unwrap();
    assert!(status_ok >= 1, "wait_terminal polled at least once");
    assert!(rec.get("dispatch.info.p95_ms").is_some());

    // Connection layer: one authenticated connection, many frames.
    assert_eq!(value("gram.connections"), "1");
    assert_eq!(value("gram.connections.active"), "1");
    let frames: u64 = value("gram.requests").parse().unwrap();
    assert!(frames >= 4, "gram.requests = {frames}");

    // Info-cache layer: per-keyword miss/hit counters.
    assert_eq!(value("info.misses.Memory"), "1");
    let hits: u64 = value("info.hits.Memory").parse().unwrap();
    assert!(hits >= 1, "info.hits.Memory = {hits}");
    assert!(rec.get("info.refresh.count").is_some());

    // Job-engine layer: lifecycle counters, the wall-time histogram, WAL
    // append latency, and the structured event trail.
    assert_eq!(value("jobs.submitted"), "1");
    assert_eq!(value("jobs.done"), "1");
    assert_eq!(value("jobs.wall.count"), "1");
    let wal_appends: u64 = value("wal.append.count").parse().unwrap();
    assert!(wal_appends >= 3, "start + submit + state + finish");
    let events: Vec<_> = rec
        .attributes
        .iter()
        .filter(|a| a.name.starts_with("Metrics:event."))
        .collect();
    assert!(
        events.iter().any(|a| a.value.contains("submitted")),
        "no submit event in {events:?}"
    );
    assert!(
        events.iter().any(|a| a.value.contains("finished DONE")),
        "no finish event in {events:?}"
    );

    sandbox.shutdown();
}

#[test]
fn xrsl_tags_apply_to_metrics_records() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    client.info("CPU").unwrap();

    // (filter=...) narrows the record to one attribute, like any keyword.
    let r = client
        .query(
            &QueryBuilder::new()
                .keyword("metrics")
                .filter("Metrics:info.misses.CPU"),
        )
        .unwrap();
    assert_eq!(r.record_count, 1);
    assert_eq!(r.records[0].attributes.len(), 1);
    assert_eq!(r.records[0].attributes[0].name, "Metrics:info.misses.CPU");
    assert_eq!(r.records[0].attributes[0].value, "1");

    // (format=xml) renders the same snapshot as XML.
    let xml = client
        .query(
            &QueryBuilder::new()
                .keyword("metrics")
                .format(OutputFormat::Xml),
        )
        .unwrap();
    assert!(xml.body.starts_with("<infogram>"));
    assert!(xml.body.contains("dispatch.info"));

    // (performance=true) attaches the provider's own update-time stats.
    let perf = client
        .query(&QueryBuilder::new().keyword("metrics").performance())
        .unwrap();
    assert!(perf.records[0].get("perf.samples").is_some());

    // TTL 0: every metrics query re-executes the provider — the answer
    // is always a live snapshot, never a cached one.
    let si = sandbox.service.info_service().lookup("Metrics").unwrap();
    let before = si.execution_count();
    client.metrics().unwrap();
    client.metrics().unwrap();
    assert_eq!(si.execution_count(), before + 2);

    sandbox.shutdown();
}
