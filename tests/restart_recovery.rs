//! Restart-from-log (E10 functional core).
//!
//! §6 of the paper: "the log can be used to restart our InfoGRAM service
//! in case it needs to be restarted (e.g. the machine was shut down)".
//! We run a service with a file-backed WAL, kill it with jobs in flight,
//! start a new incarnation over the same log, and check that unfinished
//! jobs were restarted, finished jobs kept their outcomes, and the epoch
//! advanced.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::exec::wal::FileWal;
use infogram::proto::message::JobStateCode;
use infogram::quickstart::{Sandbox, SandboxConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_wal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("infogram-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn sandbox_with_wal(path: &PathBuf) -> Sandbox {
    Sandbox::start_with(SandboxConfig {
        wal_sink: Some(Box::new(FileWal::open(path).unwrap())),
        ..Default::default()
    })
}

#[test]
fn service_restart_recovers_in_flight_jobs() {
    let wal_path = temp_wal("recover.log");

    // --- first incarnation ---
    let first = sandbox_with_wal(&wal_path);
    let mut client = first.connect_client();
    // One quick job that finishes, one long job that will be in flight.
    let quick = client
        .submit("(executable=simwork)(arguments=10)", false)
        .unwrap();
    let (state, exit, _) = client
        .wait_terminal(&quick, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));
    let long = client
        .submit("(executable=simwork)(arguments=60000)", false)
        .unwrap();
    assert_eq!(first.service.engine().epoch(), 1);
    // "Machine shutdown": stop the service abruptly.
    first.shutdown();
    drop(client);

    // --- second incarnation over the same log ---
    let second = sandbox_with_wal(&wal_path);
    let engine = second.service.engine();
    assert_eq!(engine.epoch(), 2, "epoch advances across restarts");

    // The finished job is remembered as terminal.
    let quick_view = engine.status(quick.job_id).expect("quick job recovered");
    assert_eq!(quick_view.state, JobStateCode::Done);
    assert_eq!(quick_view.exit_code, Some(0));

    // The in-flight job was restarted and is running again.
    let long_view = engine.status(long.job_id).expect("long job recovered");
    assert!(
        matches!(
            long_view.state,
            JobStateCode::Active | JobStateCode::Pending
        ),
        "restarted job is live again: {long_view:?}"
    );
    assert_eq!(engine.metrics().counter_value("jobs.recovered"), 1);

    // Its xRSL was restored verbatim from the log.
    assert_eq!(
        engine.job_rsl(long.job_id).unwrap(),
        "(executable=simwork)(arguments=60000)"
    );
    second.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn recovered_job_runs_to_completion() {
    let wal_path = temp_wal("complete.log");
    let first = sandbox_with_wal(&wal_path);
    let mut client = first.connect_client();
    let job = client
        .submit("(executable=simwork)(arguments=120)", false)
        .unwrap();
    first.shutdown();
    drop(client);

    let second = sandbox_with_wal(&wal_path);
    // The restarted job finishes on the new incarnation.
    let engine = second.service.engine().clone();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let view = engine.status(job.job_id).expect("recovered");
        if view.state.is_terminal() {
            assert_eq!(view.state, JobStateCode::Done);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    second.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn accounting_survives_restart() {
    let wal_path = temp_wal("accounting.log");
    let first = sandbox_with_wal(&wal_path);
    let mut client = first.connect_client();
    for _ in 0..2 {
        let h = client
            .submit("(executable=simwork)(arguments=5)", false)
            .unwrap();
        client
            .wait_terminal(&h, Duration::from_millis(5), Duration::from_secs(10))
            .unwrap();
    }
    first.shutdown();
    drop(client);

    let second = sandbox_with_wal(&wal_path);
    let summary = second.service.accounting();
    assert_eq!(summary["gregor"].submitted, 2);
    assert_eq!(summary["gregor"].completed, 2);
    second.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn job_ids_continue_across_restarts() {
    let wal_path = temp_wal("ids.log");
    let first = sandbox_with_wal(&wal_path);
    let mut client = first.connect_client();
    let h1 = client
        .submit("(executable=simwork)(arguments=1)", false)
        .unwrap();
    first.shutdown();
    drop(client);

    let second = sandbox_with_wal(&wal_path);
    let mut client2 = second.connect_client();
    let h2 = client2
        .submit("(executable=simwork)(arguments=1)", false)
        .unwrap();
    assert!(
        h2.job_id > h1.job_id,
        "new incarnation must not reuse job ids ({} vs {})",
        h2.job_id,
        h1.job_id
    );
    assert_eq!(h2.epoch, 2);
    second.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}
