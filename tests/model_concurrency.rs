//! Model-checked invariants for the InfoGram concurrency core.
//!
//! Runs only with `--features model` (`scripts/check_model.sh`): each
//! test hands a small multi-threaded scenario to the schedule explorer
//! in `infogram_sim::model`, which re-executes it under every bounded
//! interleaving of its synchronization points on the virtual clock.
//!
//! Checked invariants (see DESIGN.md §9):
//!
//! * **Coalescing generation** — concurrent `updateState` calls collapse
//!   into at most as many provider executions as callers, every caller
//!   gets a result, and a coalesced (cache-served) result is never
//!   expired at the moment it is returned.
//! * **Stale-waiter regression (seeded)** — a fixture reintroducing the
//!   pre-fix monitor bug (a waiter woken after a *failed* in-flight
//!   refresh blindly reuses the old cached value, with no generation or
//!   TTL check) must be *caught* by the explorer, and the shipped
//!   `SystemInformation` must pass the identical scenario.
//! * **Throttle delay** — once a value is cached, two real provider
//!   executions never start less than `delay` apart on the clock.
//! * **COW registry** — concurrent registration and lookup never tear:
//!   readers always see a consistent snapshot containing every entry
//!   registered before their read began.
//!
//! Scenarios are re-executed once per schedule, so each closure builds
//! all of its state fresh.

#![cfg(feature = "model")]
// Test harness: panic-on-failure is the error policy here — and inside a
// model scenario a panic IS the violation signal the explorer looks for.
#![allow(clippy::unwrap_used)]

use infogram::info::provider::{FnProvider, ProviderError};
use infogram::info::{DegradationFn, InformationService, SystemInformation};
use infogram::sim::metrics::MetricSet;
use infogram::sim::model;
use infogram::sim::{Clock, ManualClock, SharedClock, SimTime};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

const TTL: Duration = Duration::from_millis(10);

/// A provider that replays a script: call 1 caches v=1, call 2 expires
/// the cache (advances the clock past the TTL) and *fails*, later calls
/// succeed with v=3. The shape that exposed the stale-waiter bug.
fn scripted_fail_second(
    clock: Arc<ManualClock>,
) -> (
    Arc<Mutex<u32>>,
    impl Fn() -> Result<u64, ProviderError> + Send + Sync,
) {
    let calls = Arc::new(Mutex::new(0u32));
    let c2 = Arc::clone(&calls);
    let produce = move || {
        let n = {
            let mut g = c2.lock();
            *g += 1;
            *g
        };
        match n {
            1 => Ok(1),
            2 => {
                // The in-flight refresh takes long enough for the old
                // value to expire, then fails.
                clock.advance(Duration::from_millis(20));
                Err(ProviderError::Other("scripted failure".to_string()))
            }
            _ => Ok(3),
        }
    };
    (calls, produce)
}

// ---------------------------------------------------------------------
// Seeded regression: the pre-fix entry monitor, reintroduced verbatim
// ---------------------------------------------------------------------

/// The PR 3 stale-waiter bug as a self-contained fixture: the monitor
/// waits on `updating` only, and a woken waiter blindly serves whatever
/// is cached — no generation bump check, no TTL check. The explorer
/// must find the schedule where the in-flight update fails after the
/// cached value expired, handing the waiter a stale result.
// Note: no `ttl` field — the bug is precisely that the waiter path never
// consults one (the scenario's assertion supplies the TTL judgment).
struct BuggyEntry<P> {
    provider: P,
    clock: SharedClock,
    state: Mutex<BuggyState>,
    update_done: Condvar,
}

#[derive(Default)]
struct BuggyState {
    cached: Option<(u64, SimTime)>,
    updating: bool,
}

impl<P: Fn() -> Result<u64, ProviderError>> BuggyEntry<P> {
    fn new(provider: P, clock: SharedClock) -> Self {
        BuggyEntry {
            provider,
            clock,
            state: Mutex::new(BuggyState::default()),
            update_done: Condvar::new(),
        }
    }

    /// `(value, produced_at, from_cache)` — or the provider's error.
    fn update_state(&self) -> Result<(u64, SimTime, bool), ProviderError> {
        loop {
            let mut st = self.state.lock();
            if st.updating {
                self.update_done.wait(&mut st);
                // BUG (reintroduced): reuse the cached value without
                // checking whether the in-flight update succeeded or
                // whether the value is still within its TTL.
                if let Some((v, at)) = st.cached {
                    return Ok((v, at, true));
                }
                continue;
            }
            st.updating = true;
            drop(st);
            let result = (self.provider)();
            let mut st = self.state.lock();
            st.updating = false;
            self.update_done.notify_all();
            return match result {
                Ok(v) => {
                    let at = self.clock.now();
                    st.cached = Some((v, at));
                    Ok((v, at, false))
                }
                Err(e) => Err(e),
            };
        }
    }
}

fn regression_config() -> model::Config {
    // Environment-independent: the regression must be found (and the
    // fixed code exhaustively cleared) regardless of EXHAUSTIVE=….
    model::Config {
        max_executions: 50_000,
        preemption_bound: usize::MAX,
        max_steps: 10_000,
    }
}

#[test]
fn model_finds_seeded_stale_waiter_bug() {
    let report = model::explore(&regression_config(), || {
        let clock = model::virtual_clock();
        let (_calls, produce) = scripted_fail_second(Arc::clone(&clock));
        let entry = Arc::new(BuggyEntry::new(produce, clock.clone() as SharedClock));
        // Seed the cache with v=1.
        entry.update_state().unwrap();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let entry = Arc::clone(&entry);
            let clock = Arc::clone(&clock);
            handles.push(model::spawn(move || {
                if let Ok((_v, produced_at, from_cache)) = entry.update_state() {
                    let age = clock.now().since(produced_at);
                    assert!(
                        !from_cache || age < TTL,
                        "stale value served to coalesced waiter (age {age:?} >= ttl {TTL:?})"
                    );
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    let violation = report
        .violation
        .as_ref()
        .expect("the model checker must find the seeded stale-waiter bug");
    assert!(
        violation.message.contains("stale value served"),
        "unexpected violation: {violation:?}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "a failing schedule must be reported for replay"
    );
}

#[test]
fn fixed_entry_passes_the_stale_waiter_scenario() {
    // The shipped SystemInformation under the *identical* scenario: the
    // generation check makes the woken waiter notice the failed refresh,
    // fall back only to a TTL-valid value, and otherwise retry.
    let report = model::explore(&regression_config(), || {
        let clock = model::virtual_clock();
        let (_calls, produce) = scripted_fail_second(Arc::clone(&clock));
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", move || {
                produce().map(|v| vec![("v".to_string(), v.to_string())])
            })),
            clock.clone(),
            TTL,
            DegradationFn::default(),
        );
        si.update_state().unwrap();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let si = Arc::clone(&si);
            let clock = Arc::clone(&clock);
            handles.push(model::spawn(move || {
                if let Ok(snap) = si.update_state() {
                    let age = clock.now().since(snap.produced_at);
                    assert!(
                        !snap.from_cache || age < TTL,
                        "stale value served to coalesced waiter (age {age:?} >= ttl {TTL:?})"
                    );
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    assert!(
        report.violation.is_none(),
        "fixed SystemInformation must survive every schedule: {:?}",
        report.violation
    );
    assert!(report.complete, "state space must be exhausted: {report:?}");
}

// ---------------------------------------------------------------------
// Coalescing-generation invariant
// ---------------------------------------------------------------------

#[test]
fn coalescing_monitor_invariants_hold() {
    model::check("coalescing generation", || {
        let clock = model::virtual_clock();
        let calls = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&calls);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", move || {
                // The lock makes the provider's body a schedule window,
                // so waiters can arrive while an update is in flight.
                let mut n = c2.lock();
                *n += 1;
                Ok(vec![("n".to_string(), n.to_string())])
            })),
            clock.clone(),
            Duration::from_secs(60),
            DegradationFn::default(),
        );
        let mut handles = Vec::new();
        for _ in 0..2 {
            let si = Arc::clone(&si);
            let clock = Arc::clone(&clock);
            handles.push(model::spawn(move || {
                let snap = si.update_state().unwrap();
                let age = clock.now().since(snap.produced_at);
                assert!(
                    age < Duration::from_secs(60),
                    "returned snapshot already expired"
                );
            }));
        }
        for h in handles {
            h.join();
        }
        let executed = *calls.lock();
        assert!(
            (1..=2).contains(&executed),
            "2 callers must cause 1 or 2 executions, got {executed}"
        );
        assert_eq!(si.execution_count(), u64::from(executed));
    });
}

// ---------------------------------------------------------------------
// Throttle-delay invariant
// ---------------------------------------------------------------------

#[test]
fn throttle_delay_spaces_real_executions() {
    const DELAY: Duration = Duration::from_millis(50);
    model::check("throttle delay", || {
        let clock = model::virtual_clock();
        let starts: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
        let (s2, c2) = (Arc::clone(&starts), Arc::clone(&clock));
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", move || {
                s2.lock().push(c2.now());
                Ok(vec![("v".to_string(), "1".to_string())])
            })),
            clock.clone(),
            Duration::from_secs(60),
            DegradationFn::default(),
        );
        si.set_delay(DELAY);
        // Seed the cache; the delay gate only applies once a value exists.
        si.update_state().unwrap();
        let t1 = {
            let si = Arc::clone(&si);
            // May be throttled to the cached value or — if the sibling
            // thread advances the clock past the window first — execute
            // for real; either way the spacing invariant below holds.
            model::spawn(move || {
                si.update_state().unwrap();
            })
        };
        let t2 = {
            let si = Arc::clone(&si);
            let clock = Arc::clone(&clock);
            model::spawn(move || {
                clock.advance(Duration::from_millis(60));
                si.update_state().unwrap();
            })
        };
        t1.join();
        t2.join();
        let starts = starts.lock();
        for pair in starts.windows(2) {
            let gap = pair[1].since(pair[0]);
            assert!(
                gap >= DELAY,
                "real executions {pair:?} started {gap:?} apart, under the {DELAY:?} delay"
            );
        }
    });
}

// ---------------------------------------------------------------------
// COW registry consistency
// ---------------------------------------------------------------------

fn keyword_entry(keyword: &str, clock: &Arc<ManualClock>) -> Arc<SystemInformation> {
    let kw = keyword.to_string();
    SystemInformation::new(
        Box::new(FnProvider::new(keyword, move || {
            Ok(vec![("kw".to_string(), kw.clone())])
        })),
        clock.clone(),
        Duration::from_secs(60),
        DegradationFn::default(),
    )
}

#[test]
fn cow_registry_lookups_never_tear() {
    model::check("COW registry", || {
        let clock = model::virtual_clock();
        let svc = InformationService::new("model-host", clock.clone(), MetricSet::new());
        svc.register(keyword_entry("base", &clock));
        let writer = {
            let svc = Arc::clone(&svc);
            let clock = Arc::clone(&clock);
            model::spawn(move || {
                svc.register(keyword_entry("extra", &clock));
            })
        };
        let reader = {
            let svc = Arc::clone(&svc);
            model::spawn(move || {
                // A concurrent reader must always see a consistent
                // snapshot: "base" was registered before either thread
                // started, so it can never be missing — whatever the
                // interleaving with the concurrent register().
                assert!(
                    svc.lookup("base").is_some(),
                    "pre-registered entry vanished"
                );
                let kws = svc.keywords();
                assert!(
                    kws.iter().any(|k| k == "base"),
                    "snapshot lost a committed entry: {kws:?}"
                );
                assert!(kws.len() <= 2, "snapshot invented entries: {kws:?}");
            })
        };
        writer.join();
        reader.join();
        // After both joined, the writer's entry is visible.
        assert!(svc.lookup("extra").is_some());
        assert_eq!(svc.entries().len(), 2);
    });
}
