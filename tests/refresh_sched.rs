//! End-to-end coverage for the adaptive refresh scheduler
//! (`info::sched`): prefetch hit rate at steady load, the TTL edge
//! cases the scheduler must preserve (TTL-0 keywords are never
//! enqueued; config-erroring keywords are evicted, not retried), the
//! cold-keyword demand gate, and breaker parking — all on the virtual
//! clock against a real service built from Table 1.

use infogram::host::commands::{ChargeMode, CommandRegistry};
use infogram::host::machine::SimulatedHost;
use infogram::info::config::{SchedConfig, ServiceConfig};
use infogram::info::sched::{RefreshScheduler, WatchError};
use infogram::info::service::{InformationService, QueryOptions};
use infogram::sim::clock::Clock;
use infogram::sim::fault::{Fault, FaultPlan};
use infogram::sim::metrics::MetricSet;
use infogram::sim::ManualClock;
use infogram_rsl::InfoSelector;
use std::sync::Arc;
use std::time::Duration;

type World = (
    Arc<ManualClock>,
    Arc<CommandRegistry>,
    Arc<InformationService>,
    MetricSet,
);

fn manual_service(config_text: &str) -> World {
    let clock = ManualClock::new();
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
    let metrics = MetricSet::new();
    let info = InformationService::from_config(
        &ServiceConfig::parse(config_text).expect("config"),
        Arc::clone(&registry),
        clock.clone(),
        metrics.clone(),
    );
    (clock, registry, info, metrics)
}

fn scheduler(clock: Arc<ManualClock>, metrics: MetricSet) -> Arc<RefreshScheduler> {
    RefreshScheduler::new(clock, SchedConfig::default(), metrics)
}

/// Advance the clock to the scheduler's next deadline and tick.
fn step(clock: &ManualClock, sched: &RefreshScheduler) {
    if let Some(d) = sched.next_deadline() {
        if d > clock.now() {
            clock.set(d);
        }
    }
    sched.tick();
}

#[test]
fn ttl_zero_keywords_are_never_enqueued() {
    // Table 1 has one TTL-0 row (CPULoad); the Metrics: provider is the
    // other always-execute keyword. Neither may ever be prefetched — a
    // TTL-0 cache never serves, so a background refresh is pure waste.
    let (clock, _registry, info, metrics) = manual_service(infogram::info::TABLE1_TEXT);
    info.register_metrics_provider(metrics.clone());
    let sched = scheduler(clock.clone(), metrics.clone());

    let watched = sched.watch_service(&info);
    assert_eq!(
        watched, 4,
        "Date/Memory/CPU/list watched; CPULoad (TTL 0) and Metrics skipped"
    );
    let cpuload = info.lookup("CPULoad").expect("configured");
    let m = info.lookup("Metrics").expect("registered");
    assert_eq!(sched.watch(cpuload, None), Err(WatchError::TtlZero));
    assert_eq!(sched.watch(m, None), Err(WatchError::TtlZero));

    // Drive several full periods: the TTL-0 providers never execute.
    let cpuload = info.lookup("CPULoad").expect("configured");
    let base = cpuload.execution_count();
    for _ in 0..20 {
        step(&clock, &sched);
    }
    assert_eq!(cpuload.execution_count(), base);
    assert_eq!(
        info.lookup("Metrics")
            .expect("registered")
            .execution_count(),
        0
    );
}

#[test]
fn steady_traffic_sees_no_misses_after_warmup() {
    // One hot keyword, queried every 10 ms against a 100 ms TTL. After
    // the first (seeding) refresh, every query must be a cache hit:
    // the scheduler refreshes just before expiry, so the cache never
    // lapses under the traffic.
    let (clock, _registry, info, metrics) = manual_service("100 Date date -u\n");
    let sched = scheduler(clock.clone(), metrics.clone());
    assert_eq!(sched.watch_service(&info), 1);
    sched.tick(); // seed the cache

    let km = info.keyword_metrics("Date").expect("registered");
    let (hits0, misses0) = (km.hits.get(), km.misses.get());
    for _ in 0..200 {
        clock.advance(Duration::from_millis(10));
        // Scheduler runs whenever due work exists; queries in between.
        while sched.next_deadline().is_some_and(|d| d <= clock.now()) {
            sched.tick();
        }
        info.answer(
            &[InfoSelector::Keyword("Date".to_string())],
            &QueryOptions::default(),
        )
        .expect("query");
    }
    let hits = km.hits.get() - hits0;
    let misses = km.misses.get() - misses0;
    assert_eq!(misses, 0, "steady traffic never misses ({hits} hits)");
    assert_eq!(hits, 200);
    assert!(metrics.counter_value("sched.prefetches") >= 19);
}

#[test]
fn prefetch_executes_fewer_than_ttl_polling_would() {
    // The scheduler must beat the naive alternative — re-executing every
    // keyword each TTL regardless of demand. Here only one of three
    // keywords has traffic: the polling baseline runs 3 providers per
    // period, the scheduler runs 1 (plus initial seeding).
    let cfg = "100 Hot date -u\n100 ColdA date -u\n100 ColdB date -u\n";
    let (clock, _registry, info, metrics) = manual_service(cfg);
    let sched = scheduler(clock.clone(), metrics.clone());
    assert_eq!(sched.watch_service(&info), 3);
    sched.tick(); // seed all three

    let rounds = 50u64;
    for _ in 0..rounds {
        for _ in 0..10 {
            clock.advance(Duration::from_millis(10));
            while sched.next_deadline().is_some_and(|d| d <= clock.now()) {
                sched.tick();
            }
            info.answer(
                &[InfoSelector::Keyword("Hot".to_string())],
                &QueryOptions::default(),
            )
            .expect("query");
        }
    }
    let total: u64 = info.entries().iter().map(|e| e.execution_count()).sum();
    let polling_baseline = 3 * (rounds + 1); // every keyword, every TTL
    assert!(
        total < polling_baseline,
        "scheduler executed {total}, TTL-polling would execute {polling_baseline}"
    );
    assert!(
        metrics.counter_value("sched.skipped") >= 2 * (rounds - 2),
        "cold keywords are skipped, not refreshed"
    );
}

#[test]
fn config_error_keyword_is_evicted_not_retried() {
    // `frobnicate` is not in the simulated host's command table, so the
    // provider fails non-transiently on every execution. The scheduler
    // must evict the keyword after the first attempt instead of
    // re-running a hopeless provider forever.
    let (clock, _registry, info, metrics) =
        manual_service("100 Date date -u\n100 Broken frobnicate --now\n");
    let sched = scheduler(clock.clone(), metrics.clone());
    assert_eq!(sched.watch_service(&info), 2);

    let broken = info.lookup("Broken").expect("configured");
    let r = sched.tick();
    assert_eq!(r.evicted, 1);
    assert_eq!(r.refreshed, 1, "the healthy keyword still refreshes");
    assert_eq!(sched.watched(), 1);
    let after_evict = broken.execution_count();

    for _ in 0..10 {
        step(&clock, &sched);
    }
    assert_eq!(
        broken.execution_count(),
        after_evict,
        "an evicted keyword is never re-executed by the scheduler"
    );
    assert_eq!(metrics.counter_value("sched.evicted"), 1);
    // On-demand queries still reach the entry (and still fail) — the
    // eviction is from the refresh queue, not from the service.
    assert!(broken.fetch_supervised(None).is_err());
    assert!(broken.execution_count() > after_evict);
}

#[test]
fn broken_provider_parks_behind_the_breaker() {
    // A transiently failing provider trips its breaker; the scheduler
    // must park the keyword (reschedule past the cool-down) rather than
    // hot-loop it, and resume refreshing once the provider heals.
    let (clock, registry, info, metrics) = manual_service("100 Flaky date -u\n");
    let plan = FaultPlan::new();
    plan.script("date", vec![Fault::Fail; 30]);
    registry.set_fault_plan(plan);

    let sched = scheduler(clock.clone(), metrics.clone());
    assert_eq!(sched.watch_service(&info), 1);
    let flaky = info.lookup("Flaky").expect("configured");

    // The first refresh spends at most the bounded retry budget, then
    // the keyword is parked with a deadline strictly in the future.
    sched.tick();
    let burst = flaky.execution_count();
    assert!(
        burst <= 3,
        "one refresh spends at most 1 + max_retries executions ({burst})"
    );
    assert!(
        metrics.counter_value("sched.parked") > 0,
        "parked at least once"
    );
    assert!(
        sched.next_deadline().is_some_and(|d| d > clock.now()),
        "parked keywords stay scheduled, strictly past the cool-down"
    );

    // Re-ticking without advancing the clock must not re-execute: the
    // park is a real deadline, not a busy-loop.
    for _ in 0..10 {
        sched.tick();
    }
    assert_eq!(flaky.execution_count(), burst, "no busy-loop while parked");

    // Drive through the cool-downs. Each deadline arrival admits at most
    // one bounded refresh, so executions grow slowly while the fault
    // script drains; eventually it exhausts and the provider heals.
    let mut steps = 0u32;
    while flaky.last_state().is_err() && steps < 60 {
        let before = flaky.execution_count();
        step(&clock, &sched);
        assert!(
            flaky.execution_count() <= before + 3,
            "a parked keyword runs at most one bounded refresh per cool-down"
        );
        steps += 1;
    }
    assert!(
        flaky.last_state().is_ok(),
        "after healing, the scheduler re-seeds the cache"
    );
    assert!(
        sched.next_deadline().is_some(),
        "a healed keyword rejoins the normal refresh cadence"
    );
}

#[test]
fn unwatch_stops_refreshing() {
    let (clock, _registry, info, metrics) = manual_service("100 Date date -u\n");
    let sched = scheduler(clock.clone(), metrics);
    assert_eq!(sched.watch_service(&info), 1);
    sched.tick();
    let date = info.lookup("Date").expect("configured");
    let n = date.execution_count();
    assert!(sched.unwatch("Date"));
    for _ in 0..5 {
        clock.advance(Duration::from_millis(100));
        sched.tick();
    }
    assert_eq!(date.execution_count(), n);
    assert_eq!(sched.next_deadline(), None);
}

#[test]
fn refresh_ledger_balances_against_cache_installs() {
    // The missed-update ledger: every scheduler-driven refresh it
    // reports must be accounted for by exactly one cache install — the
    // same `generation` counter the subscription fan-out versions from.
    // If a refresh ever completed without installing (a push the hub
    // would never see) or installed twice (a duplicate push), the two
    // sums would diverge. A flaky keyword rides along to prove failed
    // refreshes land on neither side of the ledger.
    let cfg = "100 Date date -u\n80 Memory free\n100 Flaky date -u\n";
    let (clock, registry, info, metrics) = manual_service(cfg);
    let plan = FaultPlan::new();
    plan.script("date", vec![Fault::Fail, Fault::Fail]);
    registry.set_fault_plan(plan);

    let sched = scheduler(clock.clone(), metrics);
    assert_eq!(sched.watch_service(&info), 3);

    let entries = info.entries();
    let before: u64 = entries.iter().map(|e| e.generation()).sum();

    let mut reported = 0u64;
    for _ in 0..40 {
        clock.advance(Duration::from_millis(20));
        while sched.next_deadline().is_some_and(|d| d <= clock.now()) {
            reported += sched.tick().refreshed as u64;
        }
    }

    let installed: u64 = entries.iter().map(|e| e.generation()).sum::<u64>() - before;
    assert!(reported > 0, "the wheel actually turned");
    assert_eq!(
        reported, installed,
        "every reported refresh installs exactly once ({reported} reported, {installed} installed)"
    );
}
