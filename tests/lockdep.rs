//! `sim::lockdep` end to end: the always-on lock-order and
//! blocking-section analyzer that instruments the `parking_lot` shim.
//!
//! * acquiring two lock classes in both orders anywhere in the process
//!   is reported as an inversion — from a clean single-threaded run,
//!   with both acquisition-site chains,
//! * a guard held across a declared blocking point (`sim::par`'s scope
//!   join) is reported,
//! * a guard still held when its thread exits is reported, and
//! * the seeded hub-state/delivery-lock inversion regression in
//!   `SubscriptionHub` is caught with both chains naming the real
//!   classes from `crates/info/src/sub.rs`.
//!
//! Every test wraps the offending section in [`lockdep::capture`], so
//! the reports are asserted on instead of failing the zero-findings
//! sweep in `scripts/check_lockdep.sh`. Distinct class labels per test
//! keep the process-global dedup from hiding one test's report behind
//! another's.

use infogram::info::sub::{SinkClosed, SubSink, SubscriptionHub};
use infogram::proto::record::InfoRecord;
use infogram::sim::lockdep::{self, ReportKind};
use infogram::sim::metrics::MetricSet;
use infogram::sim::{par, ManualClock};
use parking_lot::{lock_class, Mutex};
use std::sync::Arc;

/// Lockdep is on under `cfg(debug_assertions)` or `INFOGRAM_LOCKDEP=1`;
/// a `--release` test run without the env var legitimately sees none of
/// the reports, so every test starts with this gate.
fn lockdep_on() -> bool {
    lockdep::enabled()
}

#[test]
fn inversion_reported_from_clean_run_with_both_chains() {
    if !lockdep_on() {
        return;
    }
    let a = Mutex::with_class((), lock_class!("test.lockdep.int.a"));
    let b = Mutex::with_class((), lock_class!("test.lockdep.int.b"));
    let (_, reports) = lockdep::capture(|| {
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle
        }
    });
    let inv = reports
        .iter()
        .find(|r| r.kind == ReportKind::OrderInversion)
        .expect("inversion reported even though nothing deadlocked");
    assert!(inv.text.contains("test.lockdep.int.a"), "{}", inv.text);
    assert!(inv.text.contains("test.lockdep.int.b"), "{}", inv.text);
    assert!(inv.text.contains("this thread:"), "{}", inv.text);
    assert!(inv.text.contains("prior order:"), "{}", inv.text);
    // Both chains carry acquisition sites in this file.
    assert!(inv.text.contains("lockdep.rs"), "{}", inv.text);
}

#[test]
fn guard_across_fan_out_join_reported() {
    if !lockdep_on() {
        return;
    }
    let m = Mutex::with_class(0u32, lock_class!("test.lockdep.int.block"));
    let (_, reports) = lockdep::capture(|| {
        let _g = m.lock();
        // Two items so the scoped pool actually spins up workers and
        // declares the join as a blocking point.
        let out = par::fan_out(&[1u32, 2], |_, x| x * 2);
        assert_eq!(out, vec![2, 4]);
    });
    let blk = reports
        .iter()
        .find(|r| r.kind == ReportKind::BlockingPoint)
        .expect("guard held across the scope join is reported");
    assert!(blk.text.contains("test.lockdep.int.block"), "{}", blk.text);
    assert!(blk.text.contains("sim.par.fan_out_join"), "{}", blk.text);
}

#[test]
fn guard_held_at_thread_exit_reported() {
    if !lockdep_on() {
        return;
    }
    let m = Arc::new(Mutex::with_class((), lock_class!("test.lockdep.int.exit")));
    let (_, reports) = lockdep::capture(|| {
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let guard = m2.lock();
            // A leaked guard means the lock is held forever; lockdep
            // flags it when the thread's held-stack drops.
            std::mem::forget(guard);
        })
        .join()
        .expect("leaker thread");
    });
    let held = reports
        .iter()
        .find(|r| r.kind == ReportKind::HeldAtExit)
        .expect("guard alive at thread exit is reported");
    assert!(held.text.contains("test.lockdep.int.exit"), "{}", held.text);
}

/// A sink that swallows frames: the test only exercises lock order.
struct NullSink;

impl SubSink for NullSink {
    fn deliver(&self, _frame: Vec<u8>) -> Result<(), SinkClosed> {
        Ok(())
    }
    fn close(&self, _frame: Vec<u8>) {}
}

#[test]
fn seeded_hub_inversion_is_caught() {
    if !lockdep_on() {
        return;
    }
    let hub = SubscriptionHub::new(ManualClock::new(), "node0.grid", MetricSet::new());
    // Normal operation: subscribe + push one update. Both paths take
    // the per-keyword delivery lock first and the hub state lock
    // second, teaching lockdep the legal order.
    hub.subscribe(&["date".to_string()], Arc::new(NullSink));
    hub.notify_record("date", InfoRecord::new("Date", "node0.grid"));

    // The seeded regression takes them in reverse. Single-threaded and
    // contention-free — nothing hangs — yet lockdep must report it.
    let (_, reports) = lockdep::capture(|| hub.debug_acquire_in_reverse_order("date"));
    let inv = reports
        .iter()
        .find(|r| r.kind == ReportKind::OrderInversion)
        .expect("seeded hub inversion reported");
    assert!(inv.text.contains("info.sub.hub_state"), "{}", inv.text);
    assert!(inv.text.contains("info.sub.delivery"), "{}", inv.text);
    assert!(inv.text.contains("this thread:"), "{}", inv.text);
    assert!(inv.text.contains("prior order:"), "{}", inv.text);
    // Both chains point into the hub implementation.
    assert!(inv.text.contains("sub.rs"), "{}", inv.text);
}
