//! Multi-threaded stress of the scatter-gather query engine: 8 threads
//! firing mixed `(info=all)`, single-keyword, and `(response=immediate)`
//! queries at one Table 1 service, checking that
//!
//! * every reply's records arrive in selector order,
//! * the telemetry ledger balances (`info.queries` = hits + refreshes),
//! * real provider executions equal the `info.refreshes` counter, and
//! * the §6.2 monitor accounts for every coalesced caller
//!   (`executions + info.coalesced` covers a synchronized storm exactly).

use infogram::host::commands::{ChargeMode, CommandRegistry};
use infogram::host::machine::SimulatedHost;
use infogram::info::config::ServiceConfig;
use infogram::info::provider::FnProvider;
use infogram::info::quality::DegradationFn;
use infogram::info::service::{InformationService, QueryOptions};
use infogram::info::SystemInformation;
use infogram::obs::MetricSet;
use infogram::rsl::{InfoSelector, ResponseMode};
use infogram::sim::SystemClock;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const THREADS: usize = 8;
const ROUNDS: usize = 25;

fn table1_on_system_clock() -> Arc<InformationService> {
    let clock = SystemClock::shared();
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::None);
    InformationService::from_config(&ServiceConfig::table1(), registry, clock, MetricSet::new())
}

fn keyword(k: &str) -> InfoSelector {
    InfoSelector::Keyword(k.to_string())
}

/// Record keywords must follow the selector list: explicit keywords in
/// request order, `All` expanding to the registry order.
fn assert_selector_order(service: &InformationService, selectors: &[InfoSelector], got: &[String]) {
    let mut expected = Vec::new();
    for sel in selectors {
        match sel {
            InfoSelector::All => expected.extend(service.keywords()),
            InfoSelector::Keyword(k) => expected.push(
                service
                    .lookup(k)
                    .expect("known keyword")
                    .keyword()
                    .to_string(),
            ),
            InfoSelector::Schema => unreachable!("not used in this test"),
        }
    }
    assert_eq!(got, expected.as_slice(), "records out of selector order");
}

#[test]
fn mixed_query_storm_keeps_ledger_and_order() {
    let service = table1_on_system_clock();
    let keywords = service.keywords();

    // Seed every keyword once so `(response=last)`-free mixed traffic
    // never hits NeverProduced and the ledger stays error-free.
    service
        .answer(&[InfoSelector::All], &QueryOptions::default())
        .unwrap();

    let workloads: Vec<Vec<InfoSelector>> = vec![
        vec![InfoSelector::All],
        vec![keyword("memory"), keyword("cpu")],
        vec![keyword("CPULoad")],
        vec![keyword("date"), InfoSelector::All, keyword("list")],
    ];

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            let workloads = &workloads;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let selectors = &workloads[(t + round) % workloads.len()];
                    let opts = if (t + round) % 3 == 0 {
                        QueryOptions {
                            mode: ResponseMode::Immediate,
                            ..Default::default()
                        }
                    } else {
                        QueryOptions::default()
                    };
                    let records = service.answer(selectors, &opts).unwrap();
                    let got: Vec<String> = records.iter().map(|r| r.keyword.clone()).collect();
                    assert_selector_order(service, selectors, &got);
                }
            });
        }
    });

    // Ledger balance: every fetch was either a cache hit or a refresh.
    let m = service.metrics();
    let queries = m.counter_value("info.queries");
    let hits = m.counter_value("info.cache_hits");
    let refreshes = m.counter_value("info.refreshes");
    assert!(queries > 0);
    assert_eq!(
        queries,
        hits + refreshes,
        "queries ({queries}) must equal hits ({hits}) + refreshes ({refreshes})"
    );

    // Refreshes equal real provider executions, summed across keywords —
    // the fan-out pool must not double-count or lose any.
    let executions: u64 = keywords
        .iter()
        .map(|k| service.lookup(k).unwrap().execution_count())
        .sum();
    assert_eq!(refreshes, executions);

    // Per-keyword ledgers balance too.
    for k in &keywords {
        let kh = m.counter_value(&format!("info.hits.{k}"));
        let km = m.counter_value(&format!("info.misses.{k}"));
        assert_eq!(km, service.lookup(k).unwrap().execution_count());
        assert!(kh + km > 0, "keyword {k} never served");
    }
}

#[test]
fn immediate_storm_coalesces_on_the_monitor() {
    // One slow keyword, THREADS synchronized `(response=immediate)`
    // callers per storm: each caller either executed the provider or was
    // coalesced onto the in-flight execution — the ledger must account
    // for every single one.
    const STORMS: usize = 5;
    let clock = SystemClock::shared();
    let metrics = MetricSet::new();
    let service = InformationService::new("stress.grid", clock.clone(), metrics.clone());
    service.register(SystemInformation::new(
        Box::new(FnProvider::new("Slow", move || {
            std::thread::sleep(Duration::from_millis(30));
            Ok(vec![("v".to_string(), "1".to_string())])
        })),
        clock,
        Duration::ZERO,
        DegradationFn::default(),
    ));
    let opts = QueryOptions {
        mode: ResponseMode::Immediate,
        ..Default::default()
    };
    let selectors = [InfoSelector::Keyword("Slow".to_string())];

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let service = &service;
            let barrier = &barrier;
            let opts = &opts;
            let selectors = &selectors;
            scope.spawn(move || {
                for _ in 0..STORMS {
                    barrier.wait();
                    let records = service.answer(selectors, opts).unwrap();
                    assert_eq!(records.len(), 1);
                    assert_eq!(records[0].keyword, "Slow");
                }
            });
        }
    });

    let executions = service.lookup("Slow").unwrap().execution_count();
    let coalesced = metrics.counter_value("info.coalesced");
    let total = (THREADS * STORMS) as u64;
    assert_eq!(metrics.counter_value("info.queries"), total);
    assert_eq!(
        executions + coalesced,
        total,
        "every caller either executed ({executions}) or coalesced ({coalesced})"
    );
    assert!(
        executions < total,
        "synchronized storms must coalesce at least once"
    );
    assert_eq!(metrics.counter_value("info.cache_hits"), coalesced);
    assert_eq!(metrics.counter_value("info.refreshes"), executions);
}
