//! The §8 application: a *sporadic grid*.
//!
//! "Such a Grid is created just for a short period of time during
//! sophisticated experiments at synchrotrons or photon sources." We
//! bring up several InfoGram nodes on demand, aggregate their
//! information, run a scan–acquire–analyze pipeline of sandboxed jarlet
//! jobs (the computationally-mediated-science shape: scan a specimen,
//! acquire a diffraction pattern per point, analyze variation), then
//! tear the grid down.

use infogram::core::mds_bridge;
use infogram::mds::filter::Filter;
use infogram::mds::giis::Giis;
use infogram::proto::message::JobStateCode;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::SystemClock;
use std::time::Duration;

fn node(name: &str, seed: u64) -> Sandbox {
    Sandbox::start_with(SandboxConfig {
        hostname: name.to_string(),
        seed,
        ..Default::default()
    })
}

#[test]
fn sporadic_grid_end_to_end() {
    // ---- bring the grid up: three beamline nodes ----
    let nodes: Vec<Sandbox> = (0..3)
        .map(|i| node(&format!("beamline{i:02}.aps.anl.gov"), 9000 + i as u64))
        .collect();

    // ---- aggregate their information into a VO-level GIIS ----
    let giis = Giis::new(SystemClock::shared(), Duration::from_secs(10));
    for n in &nodes {
        mds_bridge::register_into(&n.service, &giis);
    }
    assert_eq!(giis.member_count(), 3);

    // Find the least-loaded node through the aggregate (the scheduling
    // decision a sporadic-grid controller makes).
    let entries = giis.search_all(&Filter::parse("(kw=CPULoad)").unwrap());
    assert_eq!(entries.len(), 3);
    let chosen = entries
        .iter()
        .min_by(|a, b| {
            let la: f64 = a.first("CPULoad-load").unwrap().parse().unwrap();
            let lb: f64 = b.first("CPULoad-load").unwrap().parse().unwrap();
            la.partial_cmp(&lb).unwrap()
        })
        .unwrap();
    let target_host = chosen.first("hn").unwrap();
    let target = nodes
        .iter()
        .find(|n| n.host.hostname() == target_host)
        .unwrap();

    // ---- stage the experiment pipeline on the chosen node ----
    target
        .host
        .fs
        .write("/data/specimen.dat", "simulated 2D field of view");
    target.host.fs.write(
        "/home/gregor/scan.jar",
        "read /data/specimen.dat; compute 20; write /tmp/points scan-grid; print scanned",
    );
    target.host.fs.write(
        "/home/gregor/acquire.jar",
        "read /data/specimen.dat; compute 30; write /tmp/patterns diffraction; print acquired",
    );
    target.host.fs.write(
        "/home/gregor/analyze.jar",
        "compute 40; write /tmp/result domain-motion-analysis; print analyzed",
    );
    // The restrictive default policy reads /data and writes /tmp — the
    // pipeline stays inside it.

    // ---- run the pipeline ----
    let mut client = target.connect_client();
    let t0 = std::time::Instant::now();
    let mut first_job_done = None;
    for stage in ["scan", "acquire", "analyze"] {
        let handle = client
            .submit(&format!("(executable=/home/gregor/{stage}.jar)"), false)
            .unwrap();
        let (state, exit, output) = client
            .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
            .unwrap();
        assert_eq!(state, JobStateCode::Done, "{stage} failed: {output}");
        assert_eq!(exit, Some(0));
        if first_job_done.is_none() {
            first_job_done = Some(t0.elapsed());
        }
    }
    let makespan = t0.elapsed();
    assert!(first_job_done.unwrap() <= makespan);

    // The pipeline's artifacts landed on the node.
    assert_eq!(
        target.host.fs.read_text("/tmp/result").unwrap(),
        "domain-motion-analysis"
    );

    // Interleave a monitoring query mid-experiment — same connection.
    let q = client.info("Memory").unwrap();
    assert_eq!(q.record_count, 1);

    // ---- accounting, then tear the sporadic grid down ----
    let summary = target.service.accounting();
    assert_eq!(summary["gregor"].submitted, 3);
    assert_eq!(summary["gregor"].completed, 3);
    for n in &nodes {
        n.shutdown();
    }
}

#[test]
fn aggregate_keeps_serving_while_a_node_leaves() {
    // Sporadic grids shrink: a member's departure must not break the
    // aggregate's cached view.
    let a = node("sp-a.grid", 11);
    let b = node("sp-b.grid", 12);
    let giis = Giis::new(SystemClock::shared(), Duration::from_secs(3600));
    mds_bridge::register_into(&a.service, &giis);
    mds_bridge::register_into(&b.service, &giis);
    // Warm the aggregate cache.
    let before = giis.search_all(&Filter::parse("(kw=Memory)").unwrap());
    assert_eq!(before.len(), 2);
    // Node b leaves abruptly.
    b.shutdown();
    // The cached view still answers (staleness is the price, as MDS 2.0).
    let after = giis.search_all(&Filter::parse("(kw=Memory)").unwrap());
    assert_eq!(after.len(), 2);
    a.shutdown();
}
