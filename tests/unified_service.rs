//! End-to-end tests of the unified InfoGram service over the wire:
//! one connection, one protocol, both request kinds — Figure 3 of the
//! paper, exercised through real client/server message exchange.

use infogram::exec::sandbox::VIOLATION_EXIT;
use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::rsl::{OutputFormat, ResponseMode};
use infogram_client::{ClientError, QueryBuilder};
use std::time::Duration;

fn wait_opts() -> (Duration, Duration) {
    (Duration::from_millis(5), Duration::from_secs(10))
}

#[test]
fn info_query_all_formats_over_the_wire() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();

    let ldif = client
        .query(&QueryBuilder::new().keyword("Memory"))
        .unwrap();
    assert_eq!(ldif.record_count, 1);
    assert!(ldif.body.contains("dn: kw=Memory"));
    assert_eq!(ldif.records[0].keyword, "Memory");

    let xml = client
        .query(
            &QueryBuilder::new()
                .keyword("Memory")
                .format(OutputFormat::Xml),
        )
        .unwrap();
    assert!(xml.body.starts_with("<infogram>"));
    // The LDIF and XML views carry the same total (cached value).
    assert_eq!(
        xml.records[0].get("Memory:total").unwrap().value,
        ldif.records[0].get("Memory:total").unwrap().value
    );

    let plain = client
        .query(
            &QueryBuilder::new()
                .keyword("CPU")
                .format(OutputFormat::Plain),
        )
        .unwrap();
    assert!(plain.body.contains("CPU:count: 4"));

    sandbox.shutdown();
}

#[test]
fn concatenated_info_tags_like_the_paper() {
    // §6.6: "(info=memory)(info=cpu)"
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let result = client.query_rsl("(info=memory)(info=cpu)").unwrap();
    assert_eq!(result.record_count, 2);
    let keywords: Vec<&str> = result.records.iter().map(|r| r.keyword.as_str()).collect();
    assert_eq!(keywords, vec!["Memory", "CPU"]);
    sandbox.shutdown();
}

#[test]
fn info_all_and_schema() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let all = client.query(&QueryBuilder::new().all()).unwrap();
    assert_eq!(
        all.record_count, 6,
        "five Table 1 keywords plus the built-in Metrics:"
    );
    let schema = client.query(&QueryBuilder::new().schema()).unwrap();
    assert_eq!(schema.record_count, 6);
    assert!(schema.body.contains("Schema.Date"));
    assert!(schema.body.contains("Schema.Metrics"));
    assert!(schema.body.contains("degradation"));
    sandbox.shutdown();
}

#[test]
fn response_modes_over_the_wire() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    // Populate, then `last` must not refresh.
    client.info("Memory").unwrap();
    let execs_before = sandbox
        .service
        .info_service()
        .lookup("Memory")
        .unwrap()
        .execution_count();
    client
        .query(
            &QueryBuilder::new()
                .keyword("Memory")
                .response(ResponseMode::Last),
        )
        .unwrap();
    let si = sandbox.service.info_service().lookup("Memory").unwrap();
    assert_eq!(si.execution_count(), execs_before, "last never refreshes");
    client
        .query(
            &QueryBuilder::new()
                .keyword("Memory")
                .response(ResponseMode::Immediate),
        )
        .unwrap();
    assert_eq!(
        si.execution_count(),
        execs_before + 1,
        "immediate always refreshes"
    );
    sandbox.shutdown();
}

#[test]
fn fork_job_full_lifecycle() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=simwork)(arguments=80)", false)
        .unwrap();
    assert_eq!(handle.epoch, 1);
    let (poll, deadline) = wait_opts();
    let (state, exit, output) = client.wait_terminal(&handle, poll, deadline).unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));
    assert!(output.contains("simulated work complete"));
    sandbox.shutdown();
}

#[test]
fn batch_job_on_named_queue() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit(
            "&(executable=simwork)(arguments=50)(jobtype=batch)(queue=pbs)",
            false,
        )
        .unwrap();
    let (poll, deadline) = wait_opts();
    let (state, _, _) = client.wait_terminal(&handle, poll, deadline).unwrap();
    assert_eq!(state, JobStateCode::Done);
    sandbox.shutdown();
}

#[test]
fn matchmade_job_with_requirements() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit(
            "&(executable=simwork)(arguments=50)(jobtype=batch)(queue=condor)\
             (requirements=(os linux)(arch ia64))",
            false,
        )
        .unwrap();
    let (poll, deadline) = wait_opts();
    let (state, _, _) = client.wait_terminal(&handle, poll, deadline).unwrap();
    assert_eq!(state, JobStateCode::Done);
    sandbox.shutdown();
}

#[test]
fn jarlet_job_runs_sandboxed() {
    let sandbox = Sandbox::start();
    sandbox
        .host
        .fs
        .write("/home/gregor/scan.jar", "compute 10; print scan-complete");
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=/home/gregor/scan.jar)", false)
        .unwrap();
    let (poll, deadline) = wait_opts();
    let (state, exit, output) = client.wait_terminal(&handle, poll, deadline).unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));
    assert!(output.contains("scan-complete"));
    sandbox.shutdown();
}

#[test]
fn malicious_jarlet_blocked() {
    let sandbox = Sandbox::start();
    sandbox.host.fs.write(
        "/home/gregor/evil.jar",
        "read /etc/grid-security/hostcert.pem; print stolen",
    );
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=/home/gregor/evil.jar)", false)
        .unwrap();
    let (poll, deadline) = wait_opts();
    let (state, exit, output) = client.wait_terminal(&handle, poll, deadline).unwrap();
    assert_eq!(state, JobStateCode::Failed);
    assert_eq!(exit, Some(VIOLATION_EXIT));
    assert!(output.contains("SECURITY VIOLATION"));
    assert!(!output.contains("stolen"), "the read never happened");
    sandbox.shutdown();
}

#[test]
fn cancel_over_the_wire() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=simwork)(arguments=60000)", false)
        .unwrap();
    client.cancel(&handle).unwrap();
    let (state, _, _) = client.status(&handle).unwrap();
    assert_eq!(state, JobStateCode::Canceled);
    sandbox.shutdown();
}

#[test]
fn event_callbacks_deliver_terminal_state() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=simwork)(arguments=30)", true)
        .unwrap();
    // Trigger state observation server-side by polling until done — the
    // event is pushed on the same connection.
    let (poll, deadline) = wait_opts();
    client.wait_terminal(&handle, poll, deadline).unwrap();
    // The Done event must have been delivered (buffered during polling).
    let mut saw_done = false;
    while let Some((h, state)) = client.next_event() {
        assert_eq!(h.job_id, handle.job_id);
        if state == JobStateCode::Done {
            saw_done = true;
        }
    }
    assert!(saw_done, "callback event for the terminal state");
    sandbox.shutdown();
}

#[test]
fn unknown_keyword_and_bad_rsl_error_codes() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    match client.info("Bogus") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::NO_SUCH_KEYWORD),
        other => panic!("{other:?}"),
    }
    match client.query_rsl("((((") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::BAD_RSL),
        other => panic!("{other:?}"),
    }
    match client.query_rsl("&(executable=x)(info=cpu)") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, codes::AMBIGUOUS_REQUEST)
        }
        other => panic!("{other:?}"),
    }
    sandbox.shutdown();
}

#[test]
fn unmapped_user_denied_at_gatekeeper() {
    use infogram::gsi::{CertificateAuthority, Dn};
    use infogram::sim::{SimTime, SplitMix64};
    let sandbox = Sandbox::start();
    // A certificate from the sandbox CA would be needed; a stranger CA
    // fails authentication, a strange *user* of the right CA fails
    // authorization. Build the latter via a fresh CA == untrusted (easier
    // to produce) and check the denial path.
    let mut rng = SplitMix64::new(777);
    let rogue = CertificateAuthority::new_root(
        &Dn::user("Rogue", "CA", "Evil"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(86_400),
    );
    let impostor = rogue.issue(
        &Dn::user("Grid", "ANL", "Impostor"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(3600),
    );
    match infogram_client::InfoGramClient::connect(
        &sandbox.net,
        sandbox.addr(),
        &impostor,
        &sandbox.roots,
        sandbox.clock.clone(),
    ) {
        Err(ClientError::Denied { code, .. }) => assert_eq!(code, codes::AUTHENTICATION),
        other => panic!("{:?}", other.map(|_| "connected")),
    }
    sandbox.shutdown();
}

#[test]
fn multi_request_rejected_like_jgram() {
    // §7: "DUROC is not supported".
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    match client.submit("+(&(executable=a))(&(executable=b))", false) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::UNSUPPORTED),
        other => panic!("{other:?}"),
    }
    sandbox.shutdown();
}

#[test]
fn timeout_action_exception_surfaces_and_job_continues() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit(
            "&(executable=simwork)(arguments=60000)(timeout=1)(action=exception)",
            false,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    match client.status(&handle) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, codes::TIMEOUT_EXCEPTION)
        }
        other => panic!("{other:?}"),
    }
    sandbox.shutdown();
}

#[test]
fn timeout_action_cancel_stops_the_job() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit(
            "&(executable=simwork)(arguments=60000)(timeout=1)(action=cancel)",
            false,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let (state, _, _) = client.status(&handle).unwrap();
    assert_eq!(state, JobStateCode::Canceled);
    sandbox.shutdown();
}

#[test]
fn accounting_report_after_activity() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let (poll, deadline) = wait_opts();
    for _ in 0..3 {
        let h = client
            .submit("(executable=simwork)(arguments=10)", false)
            .unwrap();
        client.wait_terminal(&h, poll, deadline).unwrap();
    }
    let summary = sandbox.service.accounting();
    assert_eq!(summary["gregor"].submitted, 3);
    assert_eq!(summary["gregor"].completed, 3);
    let report = infogram::core::accounting::render_report(&summary);
    assert!(report.contains("gregor"));
    sandbox.shutdown();
}

#[test]
fn concurrent_clients_share_the_service() {
    let sandbox = Sandbox::start();
    let mut handles = Vec::new();
    for i in 0..6 {
        let net = sandbox.net.clone();
        let addr = sandbox.addr().to_string();
        let user = sandbox.user.clone();
        let roots = sandbox.roots.clone();
        let clock = sandbox.clock.clone();
        handles.push(std::thread::spawn(move || {
            let mut client =
                infogram_client::InfoGramClient::connect(&net, &addr, &user, &roots, clock)
                    .unwrap();
            if i % 2 == 0 {
                let r = client.info("CPULoad").unwrap();
                assert_eq!(r.record_count, 1);
            } else {
                let h = client
                    .submit("(executable=simwork)(arguments=20)", false)
                    .unwrap();
                let (state, _, _) = client
                    .wait_terminal(&h, Duration::from_millis(5), Duration::from_secs(10))
                    .unwrap();
                assert_eq!(state, JobStateCode::Done);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    sandbox.shutdown();
}

#[test]
fn contract_window_enforced_at_connect() {
    use infogram::gsi::{Contract, Dn, SubjectMatch};
    // Build a sandbox whose authorizer requires a contract that is never
    // active (empty window list).
    let cfg = SandboxConfig {
        contracts: Some(vec![Contract::new(
            SubjectMatch::Exact(Dn::user("Grid", "ANL", "Gregor")),
            "infogram",
            vec![],
        )]),
        ..Default::default()
    };
    let sandbox = Sandbox::start_with(cfg);
    match infogram_client::InfoGramClient::connect(
        &sandbox.net,
        sandbox.addr(),
        &sandbox.user,
        &sandbox.roots,
        sandbox.clock.clone(),
    ) {
        Err(ClientError::Denied { code, .. }) => assert_eq!(code, codes::AUTHORIZATION),
        other => panic!("{:?}", other.map(|_| "connected")),
    }
    sandbox.shutdown();
}
