//! Model-checked invariants for the push-subscription delivery
//! pipeline (DESIGN.md §12).
//!
//! Runs only with `--features model` (`scripts/check_model.sh`): each
//! test hands a small multi-threaded scenario to the schedule explorer
//! in `infogram_sim::model`, which re-executes it under every bounded
//! interleaving of its synchronization points.
//!
//! Checked invariants:
//!
//! * **Bounded means bounded (seeded)** — a fixture reintroducing the
//!   tempting outbox bug (capacity check and insert in *separate* lock
//!   acquisitions) must be caught by the explorer: two concurrent
//!   pushes both pass the check and the "bounded" queue overcommits.
//!   The shipped [`Outbox`] must pass the identical scenario
//!   exhaustively — its check-and-insert is one atomic critical
//!   section, so exactly one push wins the last slot and the loser
//!   gets a typed `Overflow`.
//! * **No lost, duplicated, or reordered update** — two concurrent
//!   `notify_record` calls on one channel deliver exactly versions
//!   `[1, 2]` to every subscriber, in that order, under every
//!   interleaving.
//! * **A joiner never sees a gap** — a subscriber racing `subscribe`
//!   against a concurrent notify always starts with a full snapshot
//!   and ends at the channel's final version, with no version hole in
//!   between.
//! * **Backpressure never deadlocks the pipeline** — a scheduler tick
//!   whose fan-out hits a dead connection (the eviction path: state
//!   lock, delivery lock, outbox close) interleaved with a concurrent
//!   subscribe on the same channel always terminates, leaving the
//!   healthy subscriber live and the keyword scheduled.

#![cfg(feature = "model")]
// Test harness: panic-on-failure is the error policy here — and inside a
// model scenario a panic IS the violation signal the explorer looks for.
#![allow(clippy::unwrap_used)]

use infogram::info::config::SchedConfig;
use infogram::info::provider::FnProvider;
use infogram::info::{
    DegradationFn, OutboxSink, RefreshScheduler, SinkClosed, SubSink, SubscriptionHub,
    SystemInformation,
};
use infogram::proto::message::Reply;
use infogram::proto::record::InfoRecord;
use infogram::proto::transport::{Conn, ProtoError};
use infogram::proto::{Outbox, OutboxError};
use infogram::sim::metrics::MetricSet;
use infogram::sim::model;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn regression_config() -> model::Config {
    // Environment-independent: the regression must be found (and the
    // fixed code exhaustively cleared) regardless of EXHAUSTIVE=….
    model::Config {
        max_executions: 50_000,
        preemption_bound: usize::MAX,
        max_steps: 10_000,
    }
}

/// A connection that accepts every frame (the outbox scenarios only
/// exercise queueing, not the wire).
struct NullConn;

impl Conn for NullConn {
    fn send(&self, _msg: &[u8]) -> Result<(), ProtoError> {
        Ok(())
    }
    fn recv(&self) -> Result<Vec<u8>, ProtoError> {
        Err(ProtoError::Closed)
    }
    fn peer(&self) -> String {
        "null".to_string()
    }
}

/// A connection whose peer is gone: every send fails, driving the
/// hub's eviction path.
struct DeadConn;

impl Conn for DeadConn {
    fn send(&self, _msg: &[u8]) -> Result<(), ProtoError> {
        Err(ProtoError::Closed)
    }
    fn recv(&self) -> Result<Vec<u8>, ProtoError> {
        Err(ProtoError::Closed)
    }
    fn peer(&self) -> String {
        "dead".to_string()
    }
}

/// Records every delivered frame, decoded; never fails.
struct CollectingSink {
    replies: Mutex<Vec<Reply>>,
}

impl CollectingSink {
    fn new() -> Arc<Self> {
        Arc::new(CollectingSink {
            replies: Mutex::new(Vec::new()),
        })
    }

    /// The version sequence received, in delivery order.
    fn versions(&self) -> Vec<u64> {
        self.replies
            .lock()
            .iter()
            .filter_map(|r| match r {
                Reply::Update { deltas, .. } => Some(deltas.iter().map(|d| d.version)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Whether the first delivered delta was a full snapshot.
    fn starts_full(&self) -> bool {
        match self.replies.lock().first() {
            Some(Reply::Update { deltas, .. }) => deltas.first().is_some_and(|d| d.full),
            _ => false,
        }
    }
}

impl SubSink for CollectingSink {
    fn deliver(&self, frame: Vec<u8>) -> Result<(), SinkClosed> {
        self.replies
            .lock()
            .push(Reply::decode(&frame).expect("valid frame"));
        Ok(())
    }

    fn close(&self, _frame: Vec<u8>) {}
}

fn hub_on(clock: Arc<infogram::sim::ManualClock>) -> Arc<SubscriptionHub> {
    SubscriptionHub::new(clock, "node0.grid", MetricSet::new())
}

fn record(kw: &str, val: &str) -> InfoRecord {
    let mut rec = InfoRecord::new(kw, "node0.grid");
    rec.push("value", val);
    rec
}

// ---------------------------------------------------------------------
// Seeded regression: capacity check and insert in separate acquisitions
// ---------------------------------------------------------------------

/// The tempting outbox simplification — "check the length, then push":
/// with the check and the insert in *separate* lock acquisitions, two
/// concurrent pushes at `capacity - 1` both pass the check and the
/// bounded queue overcommits. The shipped [`Outbox`] holds one critical
/// section across both.
struct BuggyOutbox {
    queue: Mutex<Vec<Vec<u8>>>,
    capacity: usize,
}

impl BuggyOutbox {
    fn push(&self, frame: Vec<u8>) -> Result<(), ()> {
        // BUG (reintroduced): check…
        if self.queue.lock().len() >= self.capacity {
            return Err(());
        }
        // …then act, after the lock was dropped and retaken.
        self.queue.lock().push(frame);
        Ok(())
    }
}

#[test]
fn model_finds_seeded_outbox_overcommit_bug() {
    let report = model::explore(&regression_config(), || {
        let outbox = Arc::new(BuggyOutbox {
            queue: Mutex::new(Vec::new()),
            capacity: 1,
        });
        let o1 = Arc::clone(&outbox);
        let o2 = Arc::clone(&outbox);
        let a = model::spawn(move || {
            let _ = o1.push(vec![1]);
        });
        let b = model::spawn(move || {
            let _ = o2.push(vec![2]);
        });
        a.join();
        b.join();
        let queued = outbox.queue.lock().len();
        assert!(
            queued <= outbox.capacity,
            "bounded outbox overcommitted: {queued} frames in a capacity-{} queue",
            outbox.capacity
        );
    });
    let violation = report
        .violation
        .as_ref()
        .expect("the model checker must find the seeded check-then-act bug");
    assert!(
        violation.message.contains("overcommitted"),
        "unexpected violation: {violation:?}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "a failing schedule must be reported for replay"
    );
}

#[test]
fn shipped_outbox_passes_the_concurrent_push_scenario() {
    let report = model::explore(&regression_config(), || {
        let outbox = Outbox::new(Arc::new(NullConn), 1);
        let results: Arc<Mutex<Vec<Result<(), OutboxError>>>> = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&outbox);
        let o2 = Arc::clone(&outbox);
        let r1 = Arc::clone(&results);
        let r2 = Arc::clone(&results);
        let a = model::spawn(move || {
            let r = o1.push(vec![1]);
            r1.lock().push(r);
        });
        let b = model::spawn(move || {
            let r = o2.push(vec![2]);
            r2.lock().push(r);
        });
        a.join();
        b.join();

        assert!(outbox.queued() <= 1, "capacity holds under every schedule");
        let results = results.lock();
        let oks = results.iter().filter(|r| r.is_ok()).count();
        let overflows = results
            .iter()
            .filter(|r| matches!(r, Err(OutboxError::Overflow { capacity: 1 })))
            .count();
        assert_eq!(
            (oks, overflows),
            (1, 1),
            "exactly one push wins the last slot; the loser gets a typed overflow"
        );
        // Frame conservation: the accepted frame drains to the wire.
        assert_eq!(outbox.drain().expect("open"), 1);
        assert_eq!(outbox.queued(), 0);
    });
    assert!(
        report.violation.is_none(),
        "shipped Outbox must survive every schedule: {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// No lost, duplicated, or reordered update
// ---------------------------------------------------------------------

#[test]
fn concurrent_notifies_deliver_every_version_exactly_once_in_order() {
    model::check(
        "lost/duplicated/reordered update under concurrent notifies",
        || {
            let clock = model::virtual_clock();
            let hub = hub_on(clock);
            let sink = CollectingSink::new();
            hub.subscribe(&["K".to_string()], sink.clone() as Arc<dyn SubSink>);

            let h1 = Arc::clone(&hub);
            let h2 = Arc::clone(&hub);
            let a = model::spawn(move || h1.notify_record("K", record("K", "a")));
            let b = model::spawn(move || h2.notify_record("K", record("K", "b")));
            a.join();
            b.join();

            assert_eq!(
                sink.versions(),
                vec![1, 2],
                "every version delivered exactly once, in version order"
            );
            assert_eq!(hub.channel_version("K"), 2);
        },
    );
}

// ---------------------------------------------------------------------
// A joiner never sees a gap
// ---------------------------------------------------------------------

#[test]
fn joiner_racing_a_notify_starts_full_and_ends_current() {
    model::check("subscribe vs notify version gap", || {
        let clock = model::virtual_clock();
        let hub = hub_on(clock);
        // Warm the channel to version 1 via an established subscriber.
        let early = CollectingSink::new();
        hub.subscribe(&["K".to_string()], early.clone() as Arc<dyn SubSink>);
        hub.notify_record("K", record("K", "1"));

        let late = CollectingSink::new();
        let h1 = Arc::clone(&hub);
        let h2 = Arc::clone(&hub);
        let late2 = late.clone();
        let a = model::spawn(move || {
            h1.subscribe(&["K".to_string()], late2 as Arc<dyn SubSink>);
        });
        let b = model::spawn(move || h2.notify_record("K", record("K", "2")));
        a.join();
        b.join();

        // Depending on the interleaving the joiner sees [full@1, Δ2],
        // or just [full@2] — never a compact delta it cannot apply and
        // never a version hole.
        let versions = late.versions();
        assert!(late.starts_full(), "a joiner always starts from a snapshot");
        assert!(
            versions == vec![1, 2] || versions == vec![2],
            "no gap and no reorder for the joiner, got {versions:?}"
        );
        assert_eq!(
            early.versions(),
            vec![1, 2],
            "the established stream is unperturbed"
        );
    });
}

// ---------------------------------------------------------------------
// Backpressure / eviction never deadlocks the pipeline
// ---------------------------------------------------------------------

#[test]
fn eviction_under_a_tick_never_deadlocks_with_a_joining_subscriber() {
    model::check("outbox backpressure vs scheduler tick", || {
        let clock = model::virtual_clock();
        let hub = hub_on(clock.clone());
        let si = SystemInformation::new(
            Box::new(FnProvider::new("K", || {
                Ok(vec![("v".to_string(), "1".to_string())])
            })),
            clock.clone(),
            Duration::from_millis(100),
            DegradationFn::Linear {
                lifetime: Duration::from_secs(60),
            },
        );
        let sched = RefreshScheduler::new(clock, SchedConfig::default(), MetricSet::new());
        sched.set_hub(Arc::clone(&hub));
        sched.watch(si, None).unwrap();

        // A doomed subscriber: its outbox drains into a dead peer, so
        // the tick's fan-out must walk the full eviction path (state
        // lock → delivery lock → outbox close) while a healthy
        // subscriber races to join the same channel.
        let doomed = Outbox::new(Arc::new(DeadConn), 4);
        hub.subscribe(&["K".to_string()], OutboxSink::new(doomed));
        let healthy = CollectingSink::new();

        let s1 = Arc::clone(&sched);
        let h2 = Arc::clone(&hub);
        let healthy2 = healthy.clone();
        let a = model::spawn(move || {
            s1.tick();
        });
        let b = model::spawn(move || {
            h2.subscribe(&["K".to_string()], healthy2 as Arc<dyn SubSink>);
        });
        a.join();
        b.join();

        assert_eq!(
            hub.active(),
            1,
            "the dead sink was evicted and the healthy joiner survives"
        );
        assert_eq!(sched.watched(), 1, "the keyword stays on the wheel");
        // Whatever the joiner received is gap-free.
        let versions = healthy.versions();
        for pair in versions.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "gap in {versions:?}");
        }
    });
}
