//! Baseline (separate GRAM + MDS, Figure 2) vs unified InfoGram
//! (Figure 4): functional equivalence and structural difference.
//!
//! The benchmark harness measures *how much* the unified service wins;
//! these tests pin down *that* both worlds produce the same answers and
//! that the baseline really does need two connections and two protocols.

use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram_client::ClientError;
use std::time::Duration;

fn dual_world() -> Sandbox {
    Sandbox::start_with(SandboxConfig {
        with_baseline: true,
        ..Default::default()
    })
}

#[test]
fn baseline_gram_refuses_info_queries() {
    // The defining deficiency of the two-service world: ask the GRAM for
    // information and it sends you to the MDS.
    let sandbox = dual_world();
    let mut dual = sandbox.connect_dual_client();
    match dual
        .gram()
        .request(&infogram::proto::message::Request::Submit {
            rsl: "(info=memory)".to_string(),
            callback: false,
        }) {
        Ok(infogram::proto::message::Reply::Error { code, message }) => {
            assert_eq!(code, codes::UNSUPPORTED);
            assert!(message.contains("MDS"));
        }
        other => panic!("{other:?}"),
    }
    sandbox.shutdown();
}

#[test]
fn both_paths_report_the_same_memory_total() {
    // E12 functional heart: the MDS view and the native InfoGram view of
    // the same provider agree attribute-for-attribute.
    let sandbox = dual_world();
    let mut dual = sandbox.connect_dual_client();
    let mut unified = sandbox.connect_client();

    let via_mds = dual.info("Memory").unwrap();
    let via_infogram = unified.info("Memory").unwrap();

    assert_eq!(via_mds.len(), 1);
    assert_eq!(via_infogram.record_count, 1);
    let mds_total = &via_mds[0].get("Memory:total").unwrap().value;
    let native_total = &via_infogram.records[0].get("Memory:total").unwrap().value;
    assert_eq!(mds_total, native_total);
    sandbox.shutdown();
}

#[test]
fn dual_client_costs_two_connections() {
    let sandbox = dual_world();
    let before = sandbox.net.metrics().counter_value("net.connections");
    let _dual = sandbox.connect_dual_client();
    let after_dual = sandbox.net.metrics().counter_value("net.connections");
    assert_eq!(after_dual - before, 2, "baseline opens GRAM + MDS");
    let _unified = sandbox.connect_client();
    let after_unified = sandbox.net.metrics().counter_value("net.connections");
    assert_eq!(after_unified - after_dual, 1, "unified opens one");
    sandbox.shutdown();
}

#[test]
fn dual_client_runs_jobs_through_gram() {
    let sandbox = dual_world();
    let mut dual = sandbox.connect_dual_client();
    let handle = dual
        .submit("(executable=simwork)(arguments=40)", false)
        .unwrap();
    let (state, exit, _) = dual
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));
    sandbox.shutdown();
}

#[test]
fn dual_client_ldap_search_works() {
    let sandbox = dual_world();
    let mut dual = sandbox.connect_dual_client();
    // The "google-like" LDAP query on the MDS side.
    let entries = dual
        .mds()
        .search(
            "/o=Grid",
            infogram::mds::dit::Scope::Sub,
            "(&(objectclass=InfoGramProvider)(Memory-free>=1))",
        )
        .unwrap();
    assert_eq!(entries.len(), 1);
    sandbox.shutdown();
}

#[test]
fn unified_handles_mixed_workload_on_one_connection() {
    let sandbox = dual_world();
    let mut unified = sandbox.connect_client();
    let conns_before = sandbox.net.metrics().counter_value("net.connections");
    // Interleave queries and jobs — all on the connection we already have.
    for i in 0..4 {
        if i % 2 == 0 {
            unified.info("CPULoad").unwrap();
        } else {
            let h = unified
                .submit("(executable=simwork)(arguments=10)", false)
                .unwrap();
            unified
                .wait_terminal(&h, Duration::from_millis(5), Duration::from_secs(10))
                .unwrap();
        }
    }
    assert_eq!(
        sandbox.net.metrics().counter_value("net.connections"),
        conns_before,
        "no additional connections for the mixed workload"
    );
    sandbox.shutdown();
}

#[test]
fn protocols_are_mutually_unintelligible() {
    // Feed each server the other protocol's bytes: both must answer with
    // an error (or drop), never misinterpret.
    let sandbox = dual_world();
    let mds_addr = sandbox.baseline_mds.as_ref().unwrap().addr().to_string();

    // An MDS request sent to the InfoGram port fails the handshake (it is
    // not a HELLO).
    let conn =
        infogram::proto::transport::Transport::connect(&sandbox.net, sandbox.addr()).unwrap();
    conn.send(&infogram::mds::protocol::MdsRequest::Unbind.encode())
        .unwrap();
    // The server either answers with an authentication error or drops
    // the connection.
    if let Ok(bytes) = conn.recv() {
        match infogram::proto::message::Reply::decode(&bytes) {
            Ok(infogram::proto::message::Reply::Error { code, .. }) => {
                assert_eq!(code, codes::AUTHENTICATION)
            }
            other => panic!("{other:?}"),
        }
    }

    // A GRAM ping sent to the MDS port fails its handshake.
    let conn2 = infogram::proto::transport::Transport::connect(&sandbox.net, &mds_addr).unwrap();
    conn2
        .send(&infogram::proto::message::Request::Ping.encode())
        .unwrap();
    if let Ok(bytes) = conn2.recv() {
        match infogram::mds::protocol::MdsReply::decode(&bytes) {
            Ok(infogram::mds::protocol::MdsReply::Error { .. }) => {}
            other => panic!("{other:?}"),
        }
    }
    sandbox.shutdown();
}

#[test]
fn unmapped_user_rejected_by_both_worlds() {
    use infogram::gsi::{CertificateAuthority, Dn};
    use infogram::sim::{SimTime, SplitMix64};
    let sandbox = dual_world();
    let mut rng = SplitMix64::new(31337);
    let rogue_ca = CertificateAuthority::new_root(
        &Dn::user("Rogue", "CA", "R"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(86_400),
    );
    let impostor = rogue_ca.issue(
        &Dn::user("Grid", "ANL", "X"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(3600),
    );
    let gram_addr = sandbox.baseline_gram.as_ref().unwrap().addr().to_string();
    let mds_addr = sandbox.baseline_mds.as_ref().unwrap().addr().to_string();
    assert!(infogram_client::DualClient::connect(
        &sandbox.net,
        &gram_addr,
        &mds_addr,
        &impostor,
        &sandbox.roots,
        sandbox.clock.clone(),
    )
    .is_err());
    assert!(matches!(
        infogram_client::InfoGramClient::connect(
            &sandbox.net,
            sandbox.addr(),
            &impostor,
            &sandbox.roots,
            sandbox.clock.clone(),
        ),
        Err(ClientError::Denied { .. })
    ));
    sandbox.shutdown();
}
