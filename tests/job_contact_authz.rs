//! Job-contact authorization (§2): "a job handle ... can be used for
//! later connection, including from other remote clients with appropriate
//! authorization." The owning identity (or a client mapped to the same
//! local account) may poll and cancel; everyone else is denied.

use infogram::gsi::{CertificateAuthority, Dn};
use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::Sandbox;
use infogram::sim::{SimTime, SplitMix64};
use infogram_client::{ClientError, InfoGramClient};
use std::time::Duration;

/// A sandbox plus a *second* mapped user ("mallory") with a different
/// local account, issued by the same CA and added to the gridmap.
fn sandbox_with_second_user() -> (Sandbox, infogram::gsi::Credential) {
    let sandbox = Sandbox::start();
    // Re-create the sandbox CA deterministically (same seed) to issue a
    // second certificate the service will trust.
    let mut rng = SplitMix64::new(0x1f06);
    let ca = CertificateAuthority::new_root(
        &Dn::user("Grid", "CA", "Sandbox Root CA"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(10 * 365 * 86_400),
    );
    // The sandbox's own certs came from the same deterministic sequence;
    // verify the trust root matches before proceeding.
    assert_eq!(
        ca.certificate(),
        &sandbox.roots[0],
        "deterministic CA reconstruction must match the sandbox's root"
    );
    // Skip the two issuances the sandbox performed (user + service cred)
    // so serial numbers do not collide, then issue mallory.
    let _ = ca.issue(
        &Dn::user("Grid", "ANL", "Gregor"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    let _ = ca.issue(
        &Dn::user("Grid", "Hosts", "node00.grid.example.org"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    let mallory = ca.issue(
        &Dn::user("Grid", "ANL", "Mallory"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    // Mallory is deliberately NOT in the sandbox's gridmap: she holds a
    // trusted certificate but no local mapping, which is exactly the case
    // the gatekeeper must stop.
    (sandbox, mallory)
}

#[test]
fn owner_may_poll_and_cancel_from_a_second_connection() {
    let sandbox = Sandbox::start();
    let mut first = sandbox.connect_client();
    let handle = first
        .submit("(executable=simwork)(arguments=60000)", false)
        .unwrap();
    // Same identity, different connection: allowed (the paper's "later
    // connection" use of a handle).
    let mut second = sandbox.connect_client();
    let (state, _, _) = second.status(&handle).unwrap();
    assert_eq!(state, JobStateCode::Active);
    second.cancel(&handle).unwrap();
    let (state, _, _) = first.status(&handle).unwrap();
    assert_eq!(state, JobStateCode::Canceled);
    sandbox.shutdown();
}

#[test]
fn unmapped_stranger_cannot_even_connect() {
    let (sandbox, mallory) = sandbox_with_second_user();
    // Mallory holds a valid certificate from the trusted CA but has no
    // gridmap entry in the running service: the gatekeeper denies her
    // before any job contact is possible.
    match InfoGramClient::connect(
        &sandbox.net,
        sandbox.addr(),
        &mallory,
        &sandbox.roots,
        sandbox.clock.clone(),
    ) {
        Err(ClientError::Denied { code, .. }) => assert_eq!(code, codes::AUTHORIZATION),
        other => panic!("{:?}", other.map(|_| "connected")),
    }
    sandbox.shutdown();
}

#[test]
fn foreign_owner_denied_at_the_engine() {
    // Exercise the contact check directly at the dispatcher level, where
    // a differently-mapped identity is representable without a second
    // gridmap entry.
    use infogram::core::InfoGramDispatcher;
    use infogram::exec::gram::{ConnCtx, RequestDispatcher};
    use infogram::proto::message::{Reply, Request};
    let sandbox = Sandbox::start();
    let mut ctx = ConnCtx::detached();
    let dispatcher = InfoGramDispatcher::new(
        std::sync::Arc::clone(sandbox.service.engine()),
        std::sync::Arc::clone(sandbox.service.info_service()),
    );
    // Alice submits.
    let reply = dispatcher.dispatch(
        "/O=Grid/CN=Alice",
        "alice",
        Request::Submit {
            rsl: "(executable=simwork)(arguments=60000)".to_string(),
            callback: false,
        },
        &mut ctx,
    );
    let handle = match reply {
        Reply::JobAccepted { handle } => handle,
        other => panic!("{other:?}"),
    };
    // Mallory (different identity, different account) may not poll...
    match dispatcher.dispatch(
        "/O=Grid/CN=Mallory",
        "mallory",
        Request::Status {
            handle: handle.clone(),
        },
        &mut ctx,
    ) {
        Reply::Error { code, .. } => assert_eq!(code, codes::AUTHORIZATION),
        other => panic!("{other:?}"),
    }
    // ...nor cancel.
    match dispatcher.dispatch(
        "/O=Grid/CN=Mallory",
        "mallory",
        Request::Cancel {
            handle: handle.clone(),
        },
        &mut ctx,
    ) {
        Reply::Error { code, .. } => assert_eq!(code, codes::AUTHORIZATION),
        other => panic!("{other:?}"),
    }
    // A different identity mapped to the *same* account may (shared local
    // account semantics, as with real gridmaps listing several DNs per
    // login).
    match dispatcher.dispatch(
        "/O=Grid/CN=AliceProxyService",
        "alice",
        Request::Status {
            handle: handle.clone(),
        },
        &mut ctx,
    ) {
        Reply::JobStatus { state, .. } => assert_eq!(state, JobStateCode::Active),
        other => panic!("{other:?}"),
    }
    // The owner still cancels fine.
    match dispatcher.dispatch(
        "/O=Grid/CN=Alice",
        "alice",
        Request::Cancel { handle },
        &mut ctx,
    ) {
        Reply::JobStatus { state, .. } => assert_eq!(state, JobStateCode::Canceled),
        other => panic!("{other:?}"),
    }
    sandbox.shutdown();
}
