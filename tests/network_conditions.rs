//! The full service under non-ideal network links, plus §7 I/O
//! redirection over the wire.

use infogram::proto::message::JobStateCode;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::net::{LatencyModel, Link};
use std::time::{Duration, Instant};

#[test]
fn service_works_over_a_slow_link() {
    let sandbox = Sandbox::start_with(SandboxConfig {
        link: Some(Link::new(
            LatencyModel::Fixed(Duration::from_millis(5)),
            0.0,
            42,
        )),
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut client = sandbox.connect_client();
    let connect_time = t0.elapsed();
    // The handshake is 3 messages + 1 ack = at least 4 × 5 ms of one-way
    // latency.
    assert!(
        connect_time >= Duration::from_millis(20),
        "handshake did not pay the link latency: {connect_time:?}"
    );

    let t1 = Instant::now();
    let r = client.info("CPU").unwrap();
    assert_eq!(r.record_count, 1);
    // One request/reply round trip ≥ 2 × 5 ms.
    assert!(t1.elapsed() >= Duration::from_millis(10));
    sandbox.shutdown();
}

#[test]
fn jittery_link_answers_remain_correct() {
    let sandbox = Sandbox::start_with(SandboxConfig {
        link: Some(Link::new(
            LatencyModel::Uniform {
                min: Duration::from_micros(100),
                max: Duration::from_millis(3),
            },
            0.0,
            7,
        )),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();
    for _ in 0..10 {
        let r = client.info("Memory").unwrap();
        assert_eq!(r.record_count, 1);
        assert!(r.records[0].get("Memory:total").is_some());
    }
    let h = client
        .submit("(executable=simwork)(arguments=20)", false)
        .unwrap();
    let (state, exit, _) = client
        .wait_terminal(&h, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(state, JobStateCode::Done);
    assert_eq!(exit, Some(0));
    sandbox.shutdown();
}

#[test]
fn stdout_redirection_over_the_wire() {
    // §7: "It is possible to redirect I/O to and from the client."
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let h = client
        .submit(
            "&(executable=simwork)(arguments=30)(stdout=/home/gregor/run.out)",
            false,
        )
        .unwrap();
    client
        .wait_terminal(&h, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    let staged = sandbox
        .host
        .fs
        .read_text("/home/gregor/run.out")
        .expect("stdout staged on the service host");
    assert!(staged.contains("simulated work complete"));
    // And the `list` information provider can now see it — information
    // and execution genuinely share one world.
    let listing = client.info("list").unwrap();
    assert!(
        listing.body.contains("run.out"),
        "the ls provider sees the redirected file:\n{}",
        listing.body
    );
    sandbox.shutdown();
}
