//! Failure injection: the service must degrade precisely, not
//! catastrophically, when providers, executables, or running processes
//! break underneath it.

use infogram::info::config::ServiceConfig;
use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram_client::ClientError;
use std::time::Duration;

/// Table 1 plus a keyword whose command always exits nonzero and one
/// whose executable does not exist.
fn config_with_broken_keywords() -> ServiceConfig {
    let mut text = infogram::info::config::TABLE1_TEXT.to_string();
    text.push_str("50 Broken /bin/false\n");
    text.push_str("50 Missing /opt/nonexistent/probe\n");
    ServiceConfig::parse(&text).expect("config")
}

#[test]
fn broken_provider_fails_only_its_own_keyword() {
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: config_with_broken_keywords(),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();

    // The broken keyword reports a provider failure. A nonzero exit is
    // *transient* in the error taxonomy, so the supervisor burns its
    // in-fetch retry budget (1 attempt + 2 retries) before giving up.
    match client.info("Broken") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::INTERNAL);
            assert!(message.contains("exit code 1"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    let info_service = sandbox.service.info_service();
    assert_eq!(
        info_service.lookup("Broken").unwrap().execution_count(),
        3,
        "transient failures are retried"
    );
    // A missing executable is a *configuration* error: retrying cannot
    // fix it, so exactly one execution happens and the breaker ignores it.
    match client.info("Missing") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::INTERNAL);
            assert!(message.contains("unknown command"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(
        info_service.lookup("Missing").unwrap().execution_count(),
        1,
        "configuration errors are never retried"
    );

    // ...while every healthy keyword keeps working on the same connection.
    for kw in ["Date", "Memory", "CPU", "CPULoad", "list"] {
        let r = client.info(kw).unwrap_or_else(|e| panic!("{kw}: {e}"));
        assert_eq!(r.record_count, 1, "{kw}");
    }

    // And (info=all) fails loudly rather than silently dropping the
    // broken keyword — partial answers would be worse than errors.
    assert!(client.query_rsl("(info=all)").is_err());
    sandbox.shutdown();
}

#[test]
fn provider_failure_does_not_poison_the_cache() {
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: config_with_broken_keywords(),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();
    // Fail twice, then verify the entry still answers metadata queries
    // and that a healthy keyword cached earlier is unaffected.
    client.info("Memory").unwrap();
    let _ = client.info("Broken");
    let _ = client.info("Broken");
    let r = client.info("Memory").unwrap();
    assert_eq!(r.record_count, 1);
    // Schema reflection still covers all seven configured keywords plus
    // the built-in Metrics: entry.
    let schema = client.query_rsl("(info=schema)").unwrap();
    assert_eq!(schema.record_count, 8);
    sandbox.shutdown();
}

#[test]
fn missing_job_executable_rejected_at_submit() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    match client.submit("(executable=/opt/warp-drive)", false) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::EXECUTION_FAILED);
            assert!(message.contains("unknown"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    // The failed submit consumed no job id visible to status polling.
    let summary = sandbox.service.accounting();
    assert!(summary.get("gregor").map(|u| u.submitted).unwrap_or(0) == 0);
    sandbox.shutdown();
}

#[test]
fn injected_process_failure_fails_the_job() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit("(executable=simwork)(arguments=60000)", false)
        .unwrap();
    let (state, _, _) = client.status(&handle).unwrap();
    assert_eq!(state, JobStateCode::Active);
    // Sabotage: the "kernel" kills the process with a nonzero exit.
    let pids: Vec<u64> = (1..=4)
        .filter(|&pid| sandbox.host.processes.inject_failure(pid, 137))
        .collect();
    assert!(!pids.is_empty(), "found the job's process to sabotage");
    let (state, exit, _) = client
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(5))
        .unwrap();
    assert_eq!(state, JobStateCode::Failed);
    assert_eq!(exit, Some(137));
    sandbox.shutdown();
}

#[test]
fn injected_failure_with_retry_budget_restarts() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    let handle = client
        .submit(
            "&(executable=simwork)(arguments=60000)(restartonfail=1)",
            false,
        )
        .unwrap();
    // Kill the first incarnation.
    let killed: Vec<u64> = (1..=4)
        .filter(|&pid| sandbox.host.processes.inject_failure(pid, 1))
        .collect();
    assert!(!killed.is_empty());
    // The engine restarts it: next observation is Pending/Active again.
    std::thread::sleep(Duration::from_millis(10));
    let (state, _, _) = client.status(&handle).unwrap();
    assert!(
        matches!(state, JobStateCode::Pending | JobStateCode::Active),
        "restarted after injected failure: {state:?}"
    );
    assert_eq!(
        sandbox
            .service
            .engine()
            .metrics()
            .counter_value("jobs.restarts"),
        1
    );
    sandbox.shutdown();
}

#[test]
fn client_disconnect_leaves_service_healthy() {
    let sandbox = Sandbox::start();
    {
        // A client that submits and vanishes without waiting.
        let mut rude = sandbox.connect_client();
        rude.submit("(executable=simwork)(arguments=50)", true)
            .unwrap();
        // dropped here — connection closes mid-callback-subscription
    }
    // A fresh client finds a fully functional service and the orphaned
    // job finishes on its own.
    let mut client = sandbox.connect_client();
    let r = client.info("Memory").unwrap();
    assert_eq!(r.record_count, 1);
    let engine = sandbox.service.engine();
    let ids = engine.job_ids();
    assert_eq!(ids.len(), 1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let view = engine.status(ids[0]).unwrap();
        if view.state.is_terminal() {
            assert_eq!(view.state, JobStateCode::Done);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphan never finished"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    sandbox.shutdown();
}

#[test]
fn garbage_frames_answered_or_dropped_without_crash() {
    let sandbox = Sandbox::start();
    for garbage in [
        &b""[..],
        b"\x00\x01\x02",
        b"GET / HTTP/1.0\r\n\r\n",
        &[0xffu8; 512][..],
    ] {
        let conn =
            infogram::proto::transport::Transport::connect(&sandbox.net, sandbox.addr()).unwrap();
        let _ = conn.send(garbage);
        // The server either answers with an authentication error or drops
        // the connection; it must not take the service down.
        let _ = conn.recv();
    }
    // Still serving.
    let mut client = sandbox.connect_client();
    client.info("CPU").unwrap();
    sandbox.shutdown();
}
