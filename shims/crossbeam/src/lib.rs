//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `crossbeam` surface it actually uses:
//! [`channel::unbounded`] MPMC channels with cloneable [`channel::Sender`]
//! and [`channel::Receiver`] handles and disconnect-aware `send`/`recv`.
//!
//! Everything is implemented over `std::sync` (a `Mutex<VecDeque>` plus a
//! `Condvar`); throughput characteristics differ from real crossbeam but
//! semantics match for the patterns this workspace exercises.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.pad("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they can observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty. Fails once
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .0
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(value) = state.queue.pop_front() {
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn blocked_recv_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
