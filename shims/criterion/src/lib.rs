//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `criterion` surface its benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], and [`BatchSize`].
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! warmed up briefly, then timed over a fixed measurement window; the
//! mean per-iteration time is printed. Good enough to spot order-of-
//! magnitude regressions by eye; not a substitute for the real crate.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How per-iteration setup cost relates to the routine cost. The shim
/// runs one setup per iteration regardless, so the variants only exist
/// for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small relative to the routine.
    SmallInput,
    /// Setup output is large relative to the routine.
    LargeInput,
    /// Run each routine exactly once per setup.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter`/`iter_batched`.
    mean_ns: f64,
    iterations: u64,
}

const WARM_UP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

impl Bencher {
    /// Time `routine`, discarding its output via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
        }
        let mut iterations = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            black_box(routine());
            iterations += 1;
        }
        let elapsed = start.elapsed();
        self.iterations = iterations;
        self.mean_ns = elapsed.as_nanos() as f64 / iterations.max(1) as f64;
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine
    /// would be timed by real criterion, so the shim subtracts nothing
    /// but keeps setup outside the semantics the caller relies on
    /// (each call gets a fresh input).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP {
            black_box(routine(setup()));
        }
        let mut iterations = 0u64;
        let mut busy = Duration::ZERO;
        let wall = Instant::now();
        while wall.elapsed() < MEASURE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iterations += 1;
        }
        self.iterations = iterations;
        self.mean_ns = busy.as_nanos() as f64 / iterations.max(1) as f64;
    }
}

/// Benchmark registry; collects results and prints them as it goes.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a named benchmark and print its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "bench {name:<28} {:>12.1} ns/iter ({} iters)",
            bencher.mean_ns, bencher.iterations
        );
        self
    }
}

/// Bundle benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| 1u64 + 1));
        c.bench_function("trivial/batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(shim_group, trivial);

    #[test]
    fn group_runs_to_completion() {
        shim_group();
    }
}
