//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `bytes` surface it actually uses:
//! the [`Buf`]/[`BufMut`] traits and the [`Bytes`]/[`BytesMut`]
//! containers, backed by plain `Vec<u8>` (no zero-copy reference
//! counting — `copy_to_bytes` really copies, which is also what the
//! real crate does for non-contiguous sources).
//!
//! Multi-byte integers use network byte order (big-endian), matching
//! the real crate's `get_u32`/`put_u32` family.

use std::fmt;

/// Read access to a cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` consumed bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Consume a big-endian `i32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Consume a big-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Consume a big-endian IEEE-754 `f64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Consume `len` bytes into an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, n: i32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, n: f64) {
        self.put_slice(&n.to_bits().to_be_bytes());
    }
}

/// An immutable byte buffer that consumes from the front via [`Buf`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Create an empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Create a buffer holding a copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that appends via [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Create an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.0,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip_is_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32(0x0102_0304);
        buf.put_i32(-2);
        assert_eq!(
            buf.as_ref(),
            &[0xAB, 1, 2, 3, 4, 0xFF, 0xFF, 0xFF, 0xFE][..]
        );

        let mut rd = Bytes::copy_from_slice(buf.as_ref());
        assert_eq!(rd.remaining(), 9);
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u32(), 0x0102_0304);
        assert_eq!(rd.get_i32(), -2);
        assert!(!rd.has_remaining());
    }

    #[test]
    fn copy_to_bytes_consumes_prefix() {
        let mut rd = Bytes::copy_from_slice(b"hello world");
        let hello = rd.copy_to_bytes(5);
        assert_eq!(hello.to_vec(), b"hello");
        assert_eq!(rd.to_vec(), b" world");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut rd = Bytes::copy_from_slice(b"x");
        rd.advance(2);
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        assert_eq!(buf.freeze().to_vec(), b"abc");
    }
}
