//! Lockdep: always-on lock-order and blocking-section analysis.
//!
//! A Linux-lockdep-style checker that lives inside the instrumented
//! sync shims so it sees **every** `Mutex`/`RwLock`/`Condvar` operation
//! in the workspace, on every test run, without the code under test
//! opting in. Where `sim::model` exhaustively explores the schedules of
//! a scenario someone hand-ported, lockdep watches the orders that real
//! executions actually use and generalizes: an `A -> B` acquisition
//! observed anywhere plus a `B -> A` acquisition observed anywhere else
//! is reported as a potential deadlock — even if no execution ever
//! hangs, and even if the two orders came from different tests, minutes
//! apart, on a single thread.
//!
//! # Lock classes
//!
//! Reporting raw lock *instances* would be useless (a hub creates one
//! delivery lock per keyword) and noisy (two instances of the same
//! per-keyword lock are never nested by design). Lockdep therefore
//! groups locks into **classes**:
//!
//! - a lock built with `with_class(value, lock_class!("info.sub.hub_state"))`
//!   joins the named class; every instance carrying the same label is
//!   the same class (all per-keyword delivery locks are one class);
//! - an unlabeled lock's class is its creation site (`file:line:column`,
//!   captured via `#[track_caller]` on `new`), so ad-hoc locks are
//!   still tracked without any annotation.
//!
//! The ordering graph, blocking-point checks, and reports all operate
//! on classes. Consequence: nesting two *instances of the same class*
//! is invisible to the order graph (it would self-loop); only the
//! same-object recursive-acquire check fires for that shape.
//!
//! # What is reported
//!
//! - **Lock-order inversion**: adding the edge `held-class -> acquiring-
//!   class` to the global order graph closes a cycle. The report names
//!   both acquisition-site chains — the current thread's and the stored
//!   provenance of the reverse path.
//! - **Guard held across a blocking point**: code that may block for an
//!   unbounded or externally-controlled time declares it with
//!   [`blocking_point`] (`sim::par` joins, outbox sink deliveries,
//!   provider command execution, clock sleeps, condvar waits). Holding
//!   any shim guard across one — except classes on the point's allow
//!   list — is reported.
//! - **Recursive acquisition**: re-acquiring a `Mutex` or a `RwLock`
//!   write lock already held by this thread (guaranteed deadlock under
//!   `std::sync`).
//! - **Lock held at thread exit**: a guard that was leaked
//!   (`mem::forget`) or otherwise never dropped when its thread ends.
//!
//! # Gating
//!
//! [`enabled`] consults `INFOGRAM_LOCKDEP` once per process: a falsy
//! value (`0`/`off`/`false`/`no`/empty) disables, anything else set
//! enables, and when unset the default is `cfg!(debug_assertions)` —
//! so plain `cargo test` runs with lockdep on and release/bench builds
//! pay only a cached-boolean check per operation. Threads tracked by a
//! `sim::model` exploration are skipped entirely: the explorer already
//! owns their schedules and deliberately drives them into deadlocks.
//!
//! # Reports and capture
//!
//! An ordinary finding prints one `LOCKDEP: ...` line to stderr and
//! increments the findings counter exported via [`counts`] (surfaced
//! by `obs` as `lockdep.findings`). `scripts/check_lockdep.sh` fails on
//! any such line. Tests that *provoke* findings on purpose (seeded
//! inversions, leak checks) wrap the provoking code in [`capture`],
//! which diverts reports from **all** threads into a buffer instead —
//! they are returned for assertions, not printed and not counted.
//! Deduplication state is global either way: a captured report marks
//! its class pair as seen process-wide.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

// ---------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------

/// Whether lockdep is active for this process (cached on first call).
///
/// `INFOGRAM_LOCKDEP` set falsy (`0`, `off`, `false`, `no`, empty)
/// disables; set to anything else enables; unset defaults to
/// `cfg!(debug_assertions)`.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("INFOGRAM_LOCKDEP") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "off" | "false" | "no"
        ),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Is the calling thread owned by a `sim::model` exploration? Lockdep
/// stands down there: the explorer controls the schedule and its
/// scenarios include deliberate deadlocks.
fn model_active() -> bool {
    #[cfg(feature = "model")]
    {
        crate::hooks::is_active()
    }
    #[cfg(not(feature = "model"))]
    {
        false
    }
}

fn tracking() -> bool {
    enabled() && !model_active()
}

// ---------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------

/// A resolved lock class: dense id plus display name. The name is
/// leaked once per class so hot paths never touch the class table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ClassRef {
    id: u32,
    name: &'static str,
}

/// How a guard holds its lock — drives the recursive-acquire check
/// (shared read access is re-entrant enough not to flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AcqKind {
    /// Exclusive mutex guard.
    Mutex,
    /// Shared `RwLock` read guard.
    Read,
    /// Exclusive `RwLock` write guard.
    Write,
}

impl AcqKind {
    fn exclusive(self) -> bool {
        matches!(self, AcqKind::Mutex | AcqKind::Write)
    }
}

/// Per-object lockdep metadata embedded in every shim `Mutex`,
/// `RwLock`, and `Condvar`. Const-constructible so `const fn new`
/// survives; everything resolves lazily on first acquire.
pub struct LdMeta {
    created: &'static Location<'static>,
    label: OnceLock<&'static str>,
    class: OnceLock<ClassRef>,
    id: OnceLock<u64>,
}

impl LdMeta {
    /// Capture the creation site of the enclosing sync object. Both
    /// this and the shim constructors are `#[track_caller]`, so the
    /// recorded location is the user's `Mutex::new(..)` line.
    #[track_caller]
    pub(crate) const fn new() -> Self {
        LdMeta {
            created: Location::caller(),
            label: OnceLock::new(),
            class: OnceLock::new(),
            id: OnceLock::new(),
        }
    }

    /// Process-unique object id (shared with the `model` hooks). Ids
    /// start at 1; 0 is the "untracked guard" sentinel.
    pub(crate) fn id(&self) -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        *self.id.get_or_init(|| NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Attach an explicit class label. Only effective before the first
    /// acquire (the shim's `with_class` constructors call it at
    /// construction, which always is).
    pub(crate) fn set_label(&self, label: &'static str) {
        let _ = self.label.set(label);
        register_class(label);
    }

    fn class_ref(&self) -> ClassRef {
        *self
            .class
            .get_or_init(|| resolve_class(self.label.get().copied(), self.created))
    }
}

/// Register a lock-class label with the known-class registry and hand
/// it back, so `lock_class!("name")` reads as an expression. Useful on
/// its own only for pre-registering classes; labels passed to
/// `with_class` are registered automatically.
pub fn register_class(label: &'static str) -> &'static str {
    if enabled() {
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.registered.insert(label);
    }
    label
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// What kind of discipline violation a [`Report`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportKind {
    /// Two lock classes were acquired in both orders somewhere in the
    /// process — a potential deadlock even if none occurred.
    OrderInversion,
    /// A guard was held across a declared blocking point.
    BlockingPoint,
    /// A thread re-acquired an exclusive lock it already holds.
    RecursiveAcquire,
    /// A guard was still held when its thread exited.
    HeldAtExit,
}

/// One lockdep finding. Outside [`capture`] it is printed to stderr as
/// a `LOCKDEP: ...` line and counted in [`counts`]; inside, it is
/// buffered and returned instead.
#[derive(Clone, Debug)]
pub struct Report {
    /// Violation category.
    pub kind: ReportKind,
    /// Human-readable description, including acquisition-site chains.
    pub text: String,
}

static FINDINGS: AtomicU64 = AtomicU64::new(0);
static CAPTURING: AtomicBool = AtomicBool::new(false);

fn captured_buf() -> &'static StdMutex<Vec<Report>> {
    static BUF: OnceLock<StdMutex<Vec<Report>>> = OnceLock::new();
    BUF.get_or_init(|| StdMutex::new(Vec::new()))
}

fn capture_gate() -> &'static StdMutex<()> {
    static GATE: OnceLock<StdMutex<()>> = OnceLock::new();
    GATE.get_or_init(|| StdMutex::new(()))
}

fn emit(kind: ReportKind, text: String) {
    if CAPTURING.load(Ordering::SeqCst) {
        captured_buf()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Report { kind, text });
        return;
    }
    FINDINGS.fetch_add(1, Ordering::Relaxed);
    eprintln!("LOCKDEP: {text}");
}

/// Run `f` with lockdep reports (from every thread) diverted into a
/// buffer, returned alongside `f`'s result. Captured reports are not
/// printed and not counted as findings, so tests can provoke seeded
/// violations without tripping `scripts/check_lockdep.sh`. Capture
/// sections are serialized process-wide.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Report>) {
    let _serial = capture_gate().lock().unwrap_or_else(|e| e.into_inner());
    captured_buf()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            CAPTURING.store(false, Ordering::SeqCst);
        }
    }
    CAPTURING.store(true, Ordering::SeqCst);
    let reset = Reset;
    let out = f();
    drop(reset);
    let reports = std::mem::take(&mut *captured_buf().lock().unwrap_or_else(|e| e.into_inner()));
    (out, reports)
}

/// Lockdep counters for observability: surfaced by `obs::Telemetry`
/// as `lockdep.classes` / `lockdep.edges` / `lockdep.findings`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Distinct lock classes observed (labeled or creation-site keyed).
    pub classes: u64,
    /// Distinct ordered class pairs in the acquisition-order graph.
    pub edges: u64,
    /// Findings reported outside [`capture`] sections.
    pub findings: u64,
}

/// Current counter snapshot. Cheap enough for a metrics provider.
pub fn counts() -> Counts {
    let (classes, edges) = {
        let g = global().lock().unwrap_or_else(|e| e.into_inner());
        (g.classes.len() as u64, g.edge_count)
    };
    Counts {
        classes,
        edges,
        findings: FINDINGS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Global order graph
// ---------------------------------------------------------------------

struct Edge {
    /// Provenance: "\"a\" acquired at X -> \"b\" acquired at Y", from
    /// the first thread that used this order.
    desc: String,
}

#[derive(Default)]
struct Global {
    /// Class key ("L:<label>" or "S:<file:line:col>") -> dense id.
    class_ids: HashMap<String, u32>,
    /// Dense id -> leaked display name.
    classes: Vec<&'static str>,
    /// Acquisition-order graph over class ids.
    graph: HashMap<u32, HashMap<u32, Edge>>,
    edge_count: u64,
    /// Inversions already reported, keyed by the closing edge.
    reported_inversions: HashSet<(u32, u32)>,
    /// (class, blocking-point label) pairs already reported.
    reported_blocks: HashSet<(u32, &'static str)>,
    /// Classes already reported for recursive acquisition.
    reported_recursive: HashSet<u32>,
    /// Labels registered via `lock_class!` / `with_class`.
    registered: HashSet<&'static str>,
}

fn global() -> &'static StdMutex<Global> {
    static G: OnceLock<StdMutex<Global>> = OnceLock::new();
    G.get_or_init(|| StdMutex::new(Global::default()))
}

fn resolve_class(label: Option<&'static str>, created: &'static Location<'static>) -> ClassRef {
    let (key, name) = match label {
        Some(l) => (format!("L:{l}"), l.to_string()),
        None => {
            let site = format!("{}:{}:{}", created.file(), created.line(), created.column());
            (format!("S:{site}"), site)
        }
    };
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = g.class_ids.get(&key) {
        return ClassRef {
            id,
            name: g.classes[id as usize],
        };
    }
    let id = g.classes.len() as u32;
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    g.classes.push(leaked);
    g.class_ids.insert(key, id);
    ClassRef { id, name: leaked }
}

/// Shortest reverse path `from -> ... -> to` in the order graph, if one
/// exists (BFS; the graph is small — one node per lock class).
fn find_path(g: &Global, from: u32, to: u32) -> Option<Vec<u32>> {
    if from == to {
        return None;
    }
    let mut prev: HashMap<u32, u32> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if let Some(nexts) = g.graph.get(&node) {
            for &next in nexts.keys() {
                if next == from || prev.contains_key(&next) {
                    continue;
                }
                prev.insert(next, node);
                if next == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Per-thread held stacks
// ---------------------------------------------------------------------

pub(crate) struct Held {
    obj: u64,
    class: ClassRef,
    site: &'static Location<'static>,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Held>,
    /// Edges (packed class-id pair) this thread already pushed to the
    /// global graph — keeps the steady-state acquire path lock-free.
    seen_edges: HashSet<u64>,
    /// (class id, blocking-point label ptr) pairs already checked.
    seen_blocks: HashSet<(u32, usize)>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        for h in &self.stack {
            emit(
                ReportKind::HeldAtExit,
                format!(
                    "lock \"{}\" (acquired at {}) still held at thread exit",
                    h.class.name, h.site
                ),
            );
        }
    }
}

thread_local! {
    static TL: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

fn pack(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

/// Record the edges `held -> new` for everything currently held, then
/// report if any closes a cycle in the global order graph.
fn record_edges(tl: &mut ThreadState, class: ClassRef, site: &'static Location<'static>) {
    for i in 0..tl.stack.len() {
        let (h_class, h_site) = (tl.stack[i].class, tl.stack[i].site);
        if h_class.id == class.id {
            continue; // same class: would self-loop (see module docs)
        }
        let key = pack(h_class.id, class.id);
        if tl.seen_edges.contains(&key) {
            continue;
        }
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(nexts) = g.graph.get(&h_class.id) {
            if nexts.contains_key(&class.id) {
                tl.seen_edges.insert(key);
                continue;
            }
        }
        // New edge: does the reverse order already exist anywhere?
        let inversion = find_path(&g, class.id, h_class.id).map(|path| {
            let chain = path
                .windows(2)
                .filter_map(|w| g.graph.get(&w[0]).and_then(|n| n.get(&w[1])))
                .map(|e| e.desc.clone())
                .collect::<Vec<_>>()
                .join("; then ");
            format!(
                "lock-order inversion between \"{held}\" and \"{new}\"\n  \
                 this thread: \"{held}\" acquired at {hsite} -> \"{new}\" acquired at {site}\n  \
                 prior order: {chain}",
                held = h_class.name,
                new = class.name,
                hsite = h_site,
            )
        });
        g.graph.entry(h_class.id).or_default().insert(
            class.id,
            Edge {
                desc: format!(
                    "\"{}\" acquired at {} -> \"{}\" acquired at {}",
                    h_class.name, h_site, class.name, site
                ),
            },
        );
        g.edge_count += 1;
        tl.seen_edges.insert(key);
        let report = match inversion {
            Some(text) if g.reported_inversions.insert((h_class.id, class.id)) => Some(text),
            _ => None,
        };
        drop(g);
        if let Some(text) = report {
            emit(ReportKind::OrderInversion, text);
        }
    }
}

/// A lock was acquired by this thread. `obj` 0 means the guard predates
/// lockdep activation (never happens in practice; defensive).
#[track_caller]
pub(crate) fn acquired(ld: &LdMeta, obj: u64, kind: AcqKind) {
    if obj == 0 || !tracking() {
        return;
    }
    let site = Location::caller();
    let class = ld.class_ref();
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        if kind.exclusive() && tl.stack.iter().any(|h| h.obj == obj) {
            let fresh = {
                let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
                g.reported_recursive.insert(class.id)
            };
            if fresh {
                let prior = tl
                    .stack
                    .iter()
                    .rev()
                    .find(|h| h.obj == obj)
                    .map(|h| h.site.to_string())
                    .unwrap_or_default();
                emit(
                    ReportKind::RecursiveAcquire,
                    format!(
                        "recursive acquisition of \"{}\": already held (acquired at {prior}), \
                         re-acquired at {site}",
                        class.name
                    ),
                );
            }
        }
        record_edges(&mut tl, class, site);
        tl.stack.push(Held { obj, class, site });
    });
}

/// A guard dropped. Removes the topmost matching entry (guards can be
/// dropped out of stack order; read guards of one object can nest).
pub(crate) fn released(obj: u64) {
    if obj == 0 || !enabled() {
        return;
    }
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        if let Some(pos) = tl.stack.iter().rposition(|h| h.obj == obj) {
            tl.stack.remove(pos);
        }
    });
}

/// `Condvar::wait` is about to really release `obj`. Returns the held
/// entry so [`wait_reacquire`] can restore it after the wakeup.
pub(crate) fn wait_release(obj: u64) -> Option<Held> {
    if obj == 0 || !enabled() {
        return None;
    }
    TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.stack
            .iter()
            .rposition(|h| h.obj == obj)
            .map(|pos| tl.stack.remove(pos))
    })
    .ok()
    .flatten()
}

/// The wait returned and the mutex is held again: restore the entry,
/// re-checking order edges against whatever is held now.
pub(crate) fn wait_reacquire(saved: Option<Held>) {
    let Some(h) = saved else { return };
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        record_edges(&mut tl, h.class, h.site);
        tl.stack.push(h);
    });
}

/// Declare that the caller is about to block for an unbounded or
/// externally-controlled time (a join, a sink delivery, a provider
/// command, a sleep). Any shim guard held here — except classes named
/// in `allowed` — is reported once per (class, point) pair.
///
/// The allow list exists because some holds across blocking calls are
/// the documented design (DESIGN §12: the per-channel delivery lock is
/// held across sink delivery precisely to serialize it); the annotation
/// turns "allowed" from a comment into a checked, enumerated fact.
pub fn blocking_point(label: &'static str, allowed: &[&str]) {
    if !tracking() {
        return;
    }
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        if tl.stack.is_empty() {
            return;
        }
        let point = label.as_ptr() as usize;
        let mut reports = Vec::new();
        for h in &tl.stack {
            if allowed.contains(&h.class.name) || tl.seen_blocks.contains(&(h.class.id, point)) {
                continue;
            }
            let fresh = {
                let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
                g.reported_blocks.insert((h.class.id, label))
            };
            if fresh {
                reports.push((
                    h.class.id,
                    format!(
                        "lock \"{}\" (acquired at {}) held across blocking point \"{label}\"",
                        h.class.name, h.site
                    ),
                ));
            }
        }
        for (id, text) in reports {
            tl.seen_blocks.insert((id, point));
            emit(ReportKind::BlockingPoint, text);
        }
    });
}

/// Attach a class label to a lock's metadata and register it. Shim
/// constructors call this from `with_class`.
pub(crate) fn label(ld: &LdMeta, class: &'static str) {
    ld.set_label(class);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Engine-level tests use synthetic LdMeta/ids instead of real shim
    // locks so they exercise the graph machinery directly; end-to-end
    // behavior (through Mutex/RwLock/Condvar) is covered by the
    // workspace `tests/lockdep.rs` suite.

    fn meta() -> &'static LdMeta {
        Box::leak(Box::new(LdMeta::new()))
    }

    #[test]
    fn inversion_is_reported_with_both_chains() {
        if !enabled() {
            return;
        }
        let (a, b) = (meta(), meta());
        a.set_label("test.lockdep.alpha");
        b.set_label("test.lockdep.beta");
        let ((), reports) = capture(|| {
            acquired(a, a.id(), AcqKind::Mutex);
            acquired(b, b.id(), AcqKind::Mutex);
            released(b.id());
            released(a.id());
            // Reverse order on the same thread: lockdep flags it even
            // though nothing ever contends.
            acquired(b, b.id(), AcqKind::Mutex);
            acquired(a, a.id(), AcqKind::Mutex);
            released(a.id());
            released(b.id());
        });
        let inv: Vec<_> = reports
            .iter()
            .filter(|r| r.kind == ReportKind::OrderInversion)
            .collect();
        assert_eq!(inv.len(), 1, "exactly one inversion: {reports:?}");
        let text = &inv[0].text;
        assert!(text.contains("test.lockdep.alpha") && text.contains("test.lockdep.beta"));
        assert!(text.contains("this thread:") && text.contains("prior order:"));
    }

    #[test]
    fn recursive_acquire_is_reported() {
        if !enabled() {
            return;
        }
        let m = meta();
        m.set_label("test.lockdep.recursive");
        let ((), reports) = capture(|| {
            acquired(m, m.id(), AcqKind::Mutex);
            acquired(m, m.id(), AcqKind::Mutex);
            released(m.id());
            released(m.id());
        });
        assert!(
            reports
                .iter()
                .any(|r| r.kind == ReportKind::RecursiveAcquire
                    && r.text.contains("test.lockdep.recursive")),
            "{reports:?}"
        );
    }

    #[test]
    fn blocking_point_respects_allow_list() {
        if !enabled() {
            return;
        }
        let m = meta();
        m.set_label("test.lockdep.blocker");
        let ((), reports) = capture(|| {
            acquired(m, m.id(), AcqKind::Mutex);
            blocking_point("test.point.allowed", &["test.lockdep.blocker"]);
            blocking_point("test.point.denied", &[]);
            released(m.id());
        });
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].kind, ReportKind::BlockingPoint);
        assert!(reports[0].text.contains("test.point.denied"));
    }

    #[test]
    fn counts_move() {
        if !enabled() {
            return;
        }
        let before = counts();
        // Distinct labels: both `meta()` calls share one creation site,
        // which would otherwise collapse them into one class.
        let (a, b) = (meta(), meta());
        a.set_label("test.lockdep.count.a");
        b.set_label("test.lockdep.count.b");
        let ((), _) = capture(|| {
            acquired(a, a.id(), AcqKind::Mutex);
            acquired(b, b.id(), AcqKind::Mutex);
            released(b.id());
            released(a.id());
        });
        let after = counts();
        assert!(after.classes >= before.classes + 2);
        assert!(after.edges > before.edges);
    }
}
