//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `parking_lot` surface it actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`], with the `parking_lot`
//! signatures (no poisoning, `lock()` returns the guard directly, and
//! `Condvar::wait` takes `&mut MutexGuard`).
//!
//! Everything is implemented over `std::sync`. Poisoning is erased by
//! propagating the inner guard out of a poisoned lock — matching
//! `parking_lot`, which has no poisoning at all.
//!
//! # Lockdep
//!
//! Because every workspace lock goes through this shim, it doubles as
//! the instrumentation layer for [`lockdep`] — an always-on (in debug
//! builds) lock-order and blocking-section analyzer. Each object
//! carries a creation site (via `#[track_caller]` on the constructors)
//! and an optional class label set with [`Mutex::with_class`] /
//! [`RwLock::with_class`] / [`Condvar::with_class`] and the
//! [`lock_class!`] macro; each acquire/release updates a per-thread
//! held stack and a global acquisition-order graph. See the [`lockdep`]
//! module docs for the report taxonomy and the `INFOGRAM_LOCKDEP` gate.
//!
//! # The `model` feature
//!
//! With `--features model`, every lock/unlock/wait/notify additionally
//! reports to the `hooks` registry, which a schedule-exploration model
//! checker (infogram-sim's `sim::model`) populates. When no hooks are
//! installed — or the calling thread is not tracked by an exploration —
//! the hook calls are no-ops and the types behave exactly as without the
//! feature. Each synchronization object gets a lazily assigned process-
//! unique `u64` id so hooks can key their bookkeeping without caring
//! about addresses or types. Lockdep stands down on tracked threads:
//! the explorer owns their schedules (and deliberately deadlocks them).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

pub mod lockdep;

/// Register a lock-class label and evaluate to it, for use at lock
/// construction sites:
///
/// ```
/// use parking_lot::{lock_class, Mutex};
/// let m = Mutex::with_class(0u32, lock_class!("example.counter"));
/// ```
///
/// All locks sharing a label form one lockdep class (e.g. every
/// per-keyword delivery lock); see [`lockdep`] for what that implies.
#[macro_export]
macro_rules! lock_class {
    ($name:expr) => {
        $crate::lockdep::register_class($name)
    };
}

#[cfg(feature = "model")]
pub mod hooks {
    //! Interposition points for a schedule-exploration model checker.
    //!
    //! A checker implements [`SyncHooks`] and registers it once with
    //! [`install`]. Acquire-side hooks (`mutex_lock`, `rw_read`,
    //! `rw_write`, `condvar_wait`) run *before* the real std operation
    //! and may block the calling thread at the model level (or panic
    //! with the checker's abort payload to unwind an execution).
    //! Release-side hooks (`mutex_unlock`, `rw_unread`, `rw_unwrite`,
    //! `condvar_notify`) run from guard `Drop` impls and MUST be
    //! non-blocking and panic-free: they can fire during unwinding.

    use std::sync::OnceLock;

    /// What a model checker observes. All ids come from the per-object
    /// counters in this crate and are process-unique.
    pub trait SyncHooks: Send + Sync {
        /// Is the calling thread part of an active exploration? When
        /// this returns `false` every other hook is skipped.
        fn tracked(&self) -> bool;
        /// A mutex is about to be acquired (blocking).
        fn mutex_lock(&self, id: u64);
        /// A mutex acquisition is being attempted; returns whether the
        /// model grants it.
        fn mutex_try_lock(&self, id: u64) -> bool;
        /// A mutex guard was dropped (the real lock is already free).
        fn mutex_unlock(&self, id: u64);
        /// A read lock is about to be acquired (blocking).
        fn rw_read(&self, id: u64);
        /// A read guard was dropped.
        fn rw_unread(&self, id: u64);
        /// A write lock is about to be acquired (blocking).
        fn rw_write(&self, id: u64);
        /// A write guard was dropped.
        fn rw_unwrite(&self, id: u64);
        /// The calling thread released `mutex` (really) and waits on
        /// condvar `cv`; on return the model has granted `mutex` back.
        fn condvar_wait(&self, cv: u64, mutex: u64);
        /// A condvar was notified (`all` distinguishes notify_all).
        fn condvar_notify(&self, cv: u64, all: bool);
    }

    static HOOKS: OnceLock<&'static dyn SyncHooks> = OnceLock::new();

    /// Register the process-wide hooks. First call wins; later calls
    /// are ignored (the checker serializes explorations itself).
    pub fn install(h: &'static dyn SyncHooks) {
        let _ = HOOKS.set(h);
    }

    fn active() -> Option<&'static dyn SyncHooks> {
        HOOKS.get().copied().filter(|h| h.tracked())
    }

    pub(crate) fn is_active() -> bool {
        active().is_some()
    }

    pub(crate) fn mutex_lock(id: u64) {
        if let Some(h) = active() {
            h.mutex_lock(id);
        }
    }

    /// `true` means proceed with the real try_lock (granted, or nobody
    /// is watching); `false` means the model says the lock is held.
    pub(crate) fn mutex_try_lock(id: u64) -> bool {
        match active() {
            Some(h) => h.mutex_try_lock(id),
            None => true,
        }
    }

    pub(crate) fn mutex_unlock(id: u64) {
        if let Some(h) = active() {
            h.mutex_unlock(id);
        }
    }

    pub(crate) fn rw_read(id: u64) {
        if let Some(h) = active() {
            h.rw_read(id);
        }
    }

    pub(crate) fn rw_unread(id: u64) {
        if let Some(h) = active() {
            h.rw_unread(id);
        }
    }

    pub(crate) fn rw_write(id: u64) {
        if let Some(h) = active() {
            h.rw_write(id);
        }
    }

    pub(crate) fn rw_unwrite(id: u64) {
        if let Some(h) = active() {
            h.rw_unwrite(id);
        }
    }

    pub(crate) fn condvar_wait(cv: u64, mutex: u64) {
        if let Some(h) = active() {
            h.condvar_wait(cv, mutex);
        }
    }

    pub(crate) fn condvar_notify(cv: u64, all: bool) {
        if let Some(h) = active() {
            h.condvar_notify(cv, all);
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` API: `lock()` returns
/// the guard directly and a panicking holder does not poison the lock.
pub struct Mutex<T: ?Sized> {
    ld: lockdep::LdMeta,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "model")]
    raw: &'a sync::Mutex<T>,
    /// Object id for release bookkeeping; 0 when neither lockdep nor
    /// the model hooks are tracking this process.
    id: u64,
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's `Condvar::wait` consumes the guard by value).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex. The caller's location becomes the lock's
    /// default lockdep class.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        Mutex {
            ld: lockdep::LdMeta::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Create a new mutex in the named lockdep class (see
    /// [`lock_class!`]). All locks sharing a label are one class.
    #[track_caller]
    pub fn with_class(value: T, class: &'static str) -> Self {
        let m = Mutex::new(value);
        lockdep::label(&m.ld, class);
        m
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn tracked_id(&self) -> u64 {
        if cfg!(feature = "model") || lockdep::enabled() {
            self.ld.id()
        } else {
            0
        }
    }

    /// Acquire the lock, blocking the current thread until it is free.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Under an exploration the hook blocks until the model grants
        // ownership; the real lock below is then uncontended (the model
        // only frees a mutex after its real guard has dropped).
        #[cfg(feature = "model")]
        hooks::mutex_lock(self.ld.id());
        let id = self.tracked_id();
        let guard = MutexGuard {
            #[cfg(feature = "model")]
            raw: &self.inner,
            id,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        };
        lockdep::acquired(&self.ld, id, lockdep::AcqKind::Mutex);
        guard
    }

    /// Attempt to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if !hooks::mutex_try_lock(self.ld.id()) {
            return None;
        }
        let id = self.tracked_id();
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // A successful try_lock still establishes ordering facts (it
        // held the lock while others were held), so it feeds the graph
        // like a blocking acquire.
        lockdep::acquired(&self.ld, id, lockdep::AcqKind::Mutex);
        Some(MutexGuard {
            #[cfg(feature = "model")]
            raw: &self.inner,
            id,
            inner: Some(inner),
        })
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Release the real lock first, then tell the trackers; both
        // paths are non-blocking and panic-free, so dropping a guard
        // mid-unwind (a panicking holder) stays safe.
        if self.inner.take().is_some() && self.id != 0 {
            lockdep::released(self.id);
            #[cfg(feature = "model")]
            hooks::mutex_unlock(self.id);
        }
    }
}

/// A reader-writer lock with the `parking_lot` API.
pub struct RwLock<T: ?Sized> {
    ld: lockdep::LdMeta,
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    id: u64,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    id: u64,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock. The caller's location becomes
    /// the lock's default lockdep class.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        RwLock {
            ld: lockdep::LdMeta::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Create a new reader-writer lock in the named lockdep class (see
    /// [`lock_class!`]).
    #[track_caller]
    pub fn with_class(value: T, class: &'static str) -> Self {
        let l = RwLock::new(value);
        lockdep::label(&l.ld, class);
        l
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn tracked_id(&self) -> u64 {
        if cfg!(feature = "model") || lockdep::enabled() {
            self.ld.id()
        } else {
            0
        }
    }

    /// Acquire shared read access, blocking until available.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        hooks::rw_read(self.ld.id());
        let id = self.tracked_id();
        let guard = RwLockReadGuard {
            id,
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
        };
        lockdep::acquired(&self.ld, id, lockdep::AcqKind::Read);
        guard
    }

    /// Acquire exclusive write access, blocking until available.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        hooks::rw_write(self.ld.id());
        let id = self.tracked_id();
        let guard = RwLockWriteGuard {
            id,
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
        };
        lockdep::acquired(&self.ld, id, lockdep::AcqKind::Write);
        guard
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.id != 0 {
            lockdep::released(self.id);
            #[cfg(feature = "model")]
            hooks::rw_unread(self.id);
        }
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.id != 0 {
            lockdep::released(self.id);
            #[cfg(feature = "model")]
            hooks::rw_unwrite(self.id);
        }
    }
}

/// A condition variable with the `parking_lot` API: `wait` reborrows the
/// guard instead of consuming it.
pub struct Condvar {
    ld: lockdep::LdMeta,
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    #[track_caller]
    pub const fn new() -> Self {
        Condvar {
            ld: lockdep::LdMeta::new(),
            inner: sync::Condvar::new(),
        }
    }

    /// Create a new condition variable in the named lockdep class (see
    /// [`lock_class!`]). Condvars never enter the order graph; the
    /// label only documents the wait site in the class registry.
    #[track_caller]
    pub fn with_class(class: &'static str) -> Self {
        let cv = Condvar::new();
        lockdep::label(&cv.ld, class);
        cv
    }

    /// Atomically release the mutex and wait for a notification, then
    /// reacquire the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The wait mutex is legitimately released for the duration, so
        // take it off the held stack; anything *else* still held while
        // we park is a blocking-section violation.
        let saved = lockdep::wait_release(guard.id);
        lockdep::blocking_point("sync.condvar.wait", &[]);
        #[cfg(feature = "model")]
        if hooks::is_active() {
            // Really release the mutex, park at the model level (the
            // hook returns once a notify woke us AND the model granted
            // the mutex back), then retake the — now free — real lock.
            let mutex_id = guard.id;
            drop(guard.inner.take());
            hooks::condvar_wait(self.ld.id(), mutex_id);
            guard.inner = Some(guard.raw.lock().unwrap_or_else(PoisonError::into_inner));
            lockdep::wait_reacquire(saved);
            return;
        }
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
        lockdep::wait_reacquire(saved);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        hooks::condvar_notify(self.ld.id(), false);
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        hooks::condvar_notify(self.ld.id(), true);
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    #[track_caller]
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn object_ids_are_unique_and_stable() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        assert_ne!(a.ld.id(), b.ld.id());
        assert_eq!(a.ld.id(), a.ld.id());
        let cv = Condvar::new();
        let rw = RwLock::new(0);
        assert_ne!(cv.ld.id(), rw.ld.id());
    }

    #[test]
    fn with_class_labels_resolve() {
        let m = Mutex::with_class(0, lock_class!("shim.test.labeled"));
        drop(m.lock());
    }
}
