//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `parking_lot` surface it actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`], with the `parking_lot`
//! signatures (no poisoning, `lock()` returns the guard directly, and
//! `Condvar::wait` takes `&mut MutexGuard`).
//!
//! Everything is implemented over `std::sync`. Poisoning is erased by
//! propagating the inner guard out of a poisoned lock — matching
//! `parking_lot`, which has no poisoning at all.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with the `parking_lot` API: `lock()` returns
/// the guard directly and a panicking holder does not poison the lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's `Condvar::wait` consumes the guard by value).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable with the `parking_lot` API: `wait` reborrows the
/// guard instead of consuming it.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the mutex and wait for a notification, then
    /// reacquire the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
