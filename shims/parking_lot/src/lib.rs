//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `parking_lot` surface it actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`], with the `parking_lot`
//! signatures (no poisoning, `lock()` returns the guard directly, and
//! `Condvar::wait` takes `&mut MutexGuard`).
//!
//! Everything is implemented over `std::sync`. Poisoning is erased by
//! propagating the inner guard out of a poisoned lock — matching
//! `parking_lot`, which has no poisoning at all.
//!
//! # The `model` feature
//!
//! With `--features model`, every lock/unlock/wait/notify additionally
//! reports to the `hooks` registry, which a schedule-exploration model
//! checker (infogram-sim's `sim::model`) populates. When no hooks are
//! installed — or the calling thread is not tracked by an exploration —
//! the hook calls are no-ops and the types behave exactly as without the
//! feature. Each synchronization object gets a lazily assigned process-
//! unique `u64` id so hooks can key their bookkeeping without caring
//! about addresses or types.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

#[cfg(feature = "model")]
pub mod hooks {
    //! Interposition points for a schedule-exploration model checker.
    //!
    //! A checker implements [`SyncHooks`] and registers it once with
    //! [`install`]. Acquire-side hooks (`mutex_lock`, `rw_read`,
    //! `rw_write`, `condvar_wait`) run *before* the real std operation
    //! and may block the calling thread at the model level (or panic
    //! with the checker's abort payload to unwind an execution).
    //! Release-side hooks (`mutex_unlock`, `rw_unread`, `rw_unwrite`,
    //! `condvar_notify`) run from guard `Drop` impls and MUST be
    //! non-blocking and panic-free: they can fire during unwinding.

    use std::sync::OnceLock;

    /// What a model checker observes. All ids come from the per-object
    /// counters in this crate and are process-unique.
    pub trait SyncHooks: Send + Sync {
        /// Is the calling thread part of an active exploration? When
        /// this returns `false` every other hook is skipped.
        fn tracked(&self) -> bool;
        /// A mutex is about to be acquired (blocking).
        fn mutex_lock(&self, id: u64);
        /// A mutex acquisition is being attempted; returns whether the
        /// model grants it.
        fn mutex_try_lock(&self, id: u64) -> bool;
        /// A mutex guard was dropped (the real lock is already free).
        fn mutex_unlock(&self, id: u64);
        /// A read lock is about to be acquired (blocking).
        fn rw_read(&self, id: u64);
        /// A read guard was dropped.
        fn rw_unread(&self, id: u64);
        /// A write lock is about to be acquired (blocking).
        fn rw_write(&self, id: u64);
        /// A write guard was dropped.
        fn rw_unwrite(&self, id: u64);
        /// The calling thread released `mutex` (really) and waits on
        /// condvar `cv`; on return the model has granted `mutex` back.
        fn condvar_wait(&self, cv: u64, mutex: u64);
        /// A condvar was notified (`all` distinguishes notify_all).
        fn condvar_notify(&self, cv: u64, all: bool);
    }

    static HOOKS: OnceLock<&'static dyn SyncHooks> = OnceLock::new();

    /// Register the process-wide hooks. First call wins; later calls
    /// are ignored (the checker serializes explorations itself).
    pub fn install(h: &'static dyn SyncHooks) {
        let _ = HOOKS.set(h);
    }

    fn active() -> Option<&'static dyn SyncHooks> {
        HOOKS.get().copied().filter(|h| h.tracked())
    }

    pub(crate) fn is_active() -> bool {
        active().is_some()
    }

    pub(crate) fn mutex_lock(id: u64) {
        if let Some(h) = active() {
            h.mutex_lock(id);
        }
    }

    /// `true` means proceed with the real try_lock (granted, or nobody
    /// is watching); `false` means the model says the lock is held.
    pub(crate) fn mutex_try_lock(id: u64) -> bool {
        match active() {
            Some(h) => h.mutex_try_lock(id),
            None => true,
        }
    }

    pub(crate) fn mutex_unlock(id: u64) {
        if let Some(h) = active() {
            h.mutex_unlock(id);
        }
    }

    pub(crate) fn rw_read(id: u64) {
        if let Some(h) = active() {
            h.rw_read(id);
        }
    }

    pub(crate) fn rw_unread(id: u64) {
        if let Some(h) = active() {
            h.rw_unread(id);
        }
    }

    pub(crate) fn rw_write(id: u64) {
        if let Some(h) = active() {
            h.rw_write(id);
        }
    }

    pub(crate) fn rw_unwrite(id: u64) {
        if let Some(h) = active() {
            h.rw_unwrite(id);
        }
    }

    pub(crate) fn condvar_wait(cv: u64, mutex: u64) {
        if let Some(h) = active() {
            h.condvar_wait(cv, mutex);
        }
    }

    pub(crate) fn condvar_notify(cv: u64, all: bool) {
        if let Some(h) = active() {
            h.condvar_notify(cv, all);
        }
    }
}

/// Lazily assign a process-unique id to a sync object. A field-embedded
/// `OnceLock<u64>` (const-constructible, so `const fn new` survives)
/// avoids casting fat pointers for `?Sized` payloads.
#[cfg(feature = "model")]
fn obj_id(slot: &std::sync::OnceLock<u64>) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    *slot.get_or_init(|| NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A mutual-exclusion lock with the `parking_lot` API: `lock()` returns
/// the guard directly and a panicking holder does not poison the lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "model")]
    model_id: std::sync::OnceLock<u64>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "model")]
    raw: &'a sync::Mutex<T>,
    #[cfg(feature = "model")]
    id: u64,
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's `Condvar::wait` consumes the guard by value).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "model")]
            model_id: std::sync::OnceLock::new(),
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(feature = "model")]
    fn id(&self) -> u64 {
        obj_id(&self.model_id)
    }

    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Under an exploration the hook blocks until the model grants
        // ownership; the real lock below is then uncontended (the model
        // only frees a mutex after its real guard has dropped).
        #[cfg(feature = "model")]
        hooks::mutex_lock(self.id());
        MutexGuard {
            #[cfg(feature = "model")]
            raw: &self.inner,
            #[cfg(feature = "model")]
            id: self.id(),
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if !hooks::mutex_try_lock(self.id()) {
            return None;
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                #[cfg(feature = "model")]
                raw: &self.inner,
                #[cfg(feature = "model")]
                id: self.id(),
                inner: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                #[cfg(feature = "model")]
                raw: &self.inner,
                #[cfg(feature = "model")]
                id: self.id(),
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[cfg(feature = "model")]
impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Release the real lock first, then tell the model; the hook is
        // non-blocking and panic-free, so dropping a guard mid-unwind
        // (a panicking holder) stays safe.
        if self.inner.take().is_some() {
            hooks::mutex_unlock(self.id);
        }
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "model")]
    model_id: std::sync::OnceLock<u64>,
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "model")]
    id: u64,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "model")]
    id: u64,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "model")]
            model_id: std::sync::OnceLock::new(),
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(feature = "model")]
    fn id(&self) -> u64 {
        obj_id(&self.model_id)
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        hooks::rw_read(self.id());
        RwLockReadGuard {
            #[cfg(feature = "model")]
            id: self.id(),
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        hooks::rw_write(self.id());
        RwLockWriteGuard {
            #[cfg(feature = "model")]
            id: self.id(),
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[cfg(feature = "model")]
impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            hooks::rw_unread(self.id);
        }
    }
}

#[cfg(feature = "model")]
impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            hooks::rw_unwrite(self.id);
        }
    }
}

/// A condition variable with the `parking_lot` API: `wait` reborrows the
/// guard instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    #[cfg(feature = "model")]
    model_id: std::sync::OnceLock<u64>,
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            #[cfg(feature = "model")]
            model_id: std::sync::OnceLock::new(),
            inner: sync::Condvar::new(),
        }
    }

    #[cfg(feature = "model")]
    fn id(&self) -> u64 {
        obj_id(&self.model_id)
    }

    /// Atomically release the mutex and wait for a notification, then
    /// reacquire the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "model")]
        if hooks::is_active() {
            // Really release the mutex, park at the model level (the
            // hook returns once a notify woke us AND the model granted
            // the mutex back), then retake the — now free — real lock.
            let mutex_id = guard.id;
            drop(guard.inner.take());
            hooks::condvar_wait(self.id(), mutex_id);
            guard.inner = Some(guard.raw.lock().unwrap_or_else(PoisonError::into_inner));
            return;
        }
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        hooks::condvar_notify(self.id(), false);
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        hooks::condvar_notify(self.id(), true);
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[cfg(feature = "model")]
    #[test]
    fn object_ids_are_unique_and_stable() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.id());
        let cv = Condvar::new();
        let rw = RwLock::new(0);
        assert_ne!(cv.id(), rw.id());
    }
}
