//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment for this repository has no access to crates.io
//! (see `shims/README.md`), so the workspace vendors a minimal,
//! API-compatible subset of the `proptest` surface its tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`, `prop_filter_map`,
//!   `prop_recursive`, and `boxed`;
//! - [`strategy::Just`], [`strategy::BoxedStrategy`], numeric-range and
//!   tuple strategies, [`collection::vec`], [`option::of`], and
//!   [`arbitrary::any`];
//! - `&str` strategies interpreted as a small regex subset (character
//!   classes, groups with alternation, `{m,n}` repetition, and the
//!   `\PC` printable-character class);
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros and [`test_runner::ProptestConfig`].
//!
//! Unlike the real crate there is **no shrinking** and no persisted
//! failure seeds: generation is a deterministic function of the test
//! name and case index, so a failing case reproduces on every run.

/// Deterministic random generation and per-test configuration.
pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases to run per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator; cheap, deterministic, and good enough for
    /// test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name and case index so every case is
        /// reproducible without any persistence.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform value in `[lo, hi]`.
        pub fn range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
            lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as u32
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and core combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erase into a cloneable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Transform each generated value through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| f(self.generate(rng))))
        }

        /// Keep only values `f` maps to `Some`, regenerating otherwise.
        /// Panics (citing `whence`) if 1000 consecutive draws are rejected.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> Option<U> + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| {
                for _ in 0..1000 {
                    if let Some(v) = f(self.generate(rng)) {
                        return v;
                    }
                }
                panic!("prop_filter_map rejected 1000 draws in a row: {whence}");
            }))
        }

        /// Build a recursive strategy: `f` maps an "inner" strategy to a
        /// branch strategy; generated trees nest at most `depth` levels
        /// before bottoming out in `self` (the leaf strategy). The
        /// `_desired_size`/`_expected_branch` hints are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = f(strat).boxed();
                let leaf = leaf.clone();
                strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // 1-in-3 leaves keep generated trees shallow on
                    // average while still exercising every level.
                    if rng.below(3) == 0 {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }));
            }
            strat
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generate a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; backs `prop_oneof!`.
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng| {
            arms[rng.below(arms.len())].generate(rng)
        }))
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` — full-range generation for primitive types.
pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy::<T>(Rc::new(|rng: &mut TestRng| T::arbitrary(rng))).boxed()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;
    use std::rc::Rc;

    /// Generate a `Vec` whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        assert!(size.end > size.start, "empty vec size range");
        BoxedStrategy(Rc::new(move |rng| {
            let n = size.start + rng.below(size.end - size.start);
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::rc::Rc;

    /// Generate `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        }))
    }
}

/// `&str` strategies: a pattern is parsed as a small regex subset and
/// generates matching strings.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One quantified element of a pattern.
    struct Item {
        node: Node,
        min: u32,
        max: u32,
    }

    enum Node {
        Lit(char),
        /// Expanded candidate set (classes, `.`, `\PC`).
        Class(Vec<char>),
        /// `(alt|alt|…)`.
        Group(Vec<Vec<Item>>),
    }

    /// Printable characters used for `.`, `\PC`, and as the universe of
    /// negated classes: printable ASCII plus a few multibyte characters
    /// so UTF-8 handling gets exercised.
    fn printable() -> Vec<char> {
        let mut set: Vec<char> = (' '..='~').collect();
        set.extend(['é', 'Ω', '☃']);
        set
    }

    struct Parser<'a> {
        pattern: &'a str,
        chars: Vec<char>,
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn new(pattern: &'a str) -> Self {
            Parser {
                pattern,
                chars: pattern.chars().collect(),
                pos: 0,
            }
        }

        fn fail(&self, what: &str) -> ! {
            panic!(
                "proptest shim: unsupported pattern {:?} at offset {}: {what}",
                self.pattern, self.pos
            );
        }

        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> char {
            let c = self.chars[self.pos];
            self.pos += 1;
            c
        }

        fn parse_sequence(&mut self) -> Vec<Item> {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let node = match self.bump() {
                    '(' => {
                        let mut alts = vec![self.parse_sequence()];
                        while self.peek() == Some('|') {
                            self.bump();
                            alts.push(self.parse_sequence());
                        }
                        if self.peek() != Some(')') {
                            self.fail("unclosed group");
                        }
                        self.bump();
                        Node::Group(alts)
                    }
                    '[' => Node::Class(self.parse_class()),
                    '\\' => self.parse_escape(),
                    '.' => Node::Class(printable()),
                    lit => Node::Lit(lit),
                };
                let (min, max) = self.parse_quantifier();
                items.push(Item { node, min, max });
            }
            items
        }

        fn parse_escape(&mut self) -> Node {
            match self.peek() {
                Some('P') => {
                    self.bump();
                    if self.peek() != Some('C') {
                        self.fail("only the \\PC category is supported");
                    }
                    self.bump();
                    Node::Class(printable())
                }
                Some('r') => {
                    self.bump();
                    Node::Lit('\r')
                }
                Some('n') => {
                    self.bump();
                    Node::Lit('\n')
                }
                Some('t') => {
                    self.bump();
                    Node::Lit('\t')
                }
                Some(c) if !c.is_alphanumeric() => {
                    self.bump();
                    Node::Lit(c)
                }
                _ => self.fail("unsupported escape"),
            }
        }

        fn parse_class(&mut self) -> Vec<char> {
            let negated = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut set = Vec::new();
            loop {
                let c = match self.peek() {
                    None => self.fail("unclosed character class"),
                    Some(']') => {
                        self.bump();
                        break;
                    }
                    Some('\\') => {
                        self.bump();
                        match self.parse_escape() {
                            Node::Lit(c) => c,
                            _ => self.fail("category escape inside class"),
                        }
                    }
                    Some(_) => self.bump(),
                };
                // `a-z` range, unless `-` is the final character.
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let hi = match self.peek() {
                        Some('\\') => {
                            self.bump();
                            match self.parse_escape() {
                                Node::Lit(c) => c,
                                _ => self.fail("category escape inside class"),
                            }
                        }
                        Some(_) => self.bump(),
                        None => self.fail("unclosed range"),
                    };
                    if hi < c {
                        self.fail("inverted class range");
                    }
                    set.extend(c..=hi);
                } else {
                    set.push(c);
                }
            }
            if negated {
                let set: Vec<char> = printable()
                    .into_iter()
                    .filter(|c| !set.contains(c))
                    .collect();
                if set.is_empty() {
                    self.fail("negated class excludes everything");
                }
                set
            } else {
                if set.is_empty() {
                    self.fail("empty character class");
                }
                set
            }
        }

        fn parse_quantifier(&mut self) -> (u32, u32) {
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let min = self.parse_number();
                    let max = match self.peek() {
                        Some(',') => {
                            self.bump();
                            self.parse_number()
                        }
                        _ => min,
                    };
                    if self.peek() != Some('}') {
                        self.fail("unclosed quantifier");
                    }
                    self.bump();
                    if max < min {
                        self.fail("inverted quantifier");
                    }
                    (min, max)
                }
                Some('?') => {
                    self.bump();
                    (0, 1)
                }
                Some('*') => {
                    self.bump();
                    (0, 8)
                }
                Some('+') => {
                    self.bump();
                    (1, 8)
                }
                _ => (1, 1),
            }
        }

        fn parse_number(&mut self) -> u32 {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            if self.pos == start {
                self.fail("expected a number");
            }
            self.chars[start..self.pos]
                .iter()
                .collect::<String>()
                .parse()
                .unwrap()
        }
    }

    fn generate_items(items: &[Item], rng: &mut TestRng, out: &mut String) {
        for item in items {
            let reps = rng.range_inclusive(item.min, item.max);
            for _ in 0..reps {
                match &item.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(set) => out.push(set[rng.below(set.len())]),
                    Node::Group(alts) => generate_items(&alts[rng.below(alts.len())], rng, out),
                }
            }
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut parser = Parser::new(self);
            let items = parser.parse_sequence();
            if parser.pos != parser.chars.len() {
                parser.fail("dangling `)` or `|`");
            }
            let mut out = String::new();
            generate_items(&items, rng, &mut out);
            out
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-tree shorthand.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body (plain `assert!` in the shim: no
/// shrinking, so failures panic immediately with the deterministic case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $binding =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("shim-selftest", 0)
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-Z][A-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'));

            let s = "[^\\r\\n]{0,24}".generate(&mut rng);
            assert!(!s.contains('\r') && !s.contains('\n'));
            assert!(s.chars().count() <= 24);

            let s = "(/|/\\./){0,3}".generate(&mut rng);
            let mut rest = s.as_str();
            let mut parts = 0;
            while !rest.is_empty() {
                rest = rest
                    .strip_prefix("/./")
                    .or_else(|| rest.strip_prefix('/'))
                    .expect("only / and /./ segments");
                parts += 1;
            }
            assert!(parts <= 3);

            let s = "\\PC{0,64}".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let (a, b, c) = (1u64..50, -128i32..128, 0.0f64..1.0).generate(&mut rng);
            assert!((1..50).contains(&a));
            assert!((-128..128).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn filter_map_retries_until_accepted() {
        let strat = (0u64..100).prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config, oneof, option, assertions.
        #[test]
        fn macro_end_to_end(
            n in prop_oneof![Just(1u64), 2u64..10],
            opt in prop::option::of(any::<bool>()),
            s in "[a-z]{1,8}",
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!s.is_empty() && s.len() <= 8);
            if let Some(b) = opt {
                prop_assert_eq!(b, b);
            }
        }
    }
}
